"""Contract rules: pack manifests, docstrings, and bench-metric gating.

These rules check, statically from the AST, the cross-artifact promises
the runtime only discovers late (or not at all):

* ``REP010`` — every ``@PACK.scenario`` declaration's param-schema
  ``properties`` key set exactly equals its ``defaults`` keys (the
  runtime validates only one direction: defaults must *satisfy* the
  schema; a property nobody defaults is dead weight the sweep CLI will
  happily advertise);
* ``REP011`` — every ``@PACK.kernel`` id has a matching
  ``@PACK.scenario`` in the same module (the runtime raises only when
  the pack is registered — after an import somebody may never trigger);
* ``REP012`` — public definitions in ``repro.experiments``,
  ``repro.sim``, ``repro.bench``, and pack modules carry docstrings
  (the former ``scripts/check_docstrings.py`` gate, now one rule of the
  shared AST walk);
* ``REP013`` — bench metric specs that declare a ``direction`` also
  declare a ``tolerance`` or ``floor``, so the regression gate never
  silently falls back to its default slack.

Anything the rules cannot resolve statically (computed schemas, spread
defaults) is skipped, never guessed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from repro.lint.engine import Diagnostic, ModuleContext, dotted_name, register_rule

__all__: list[str] = []

_DOCSTRING_PACKAGES = ("repro.experiments", "repro.sim", "repro.bench",
                       "repro.serve")


# ---------------------------------------------------------------------------
# static pack-manifest model (shared by REP010/REP011)
# ---------------------------------------------------------------------------


def _module_assigns(tree: ast.Module) -> dict[str, ast.AST]:
    """Module-level ``NAME = <expr>`` assignments, name -> value node."""
    out: dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.value is not None
        ):
            out[node.target.id] = node.value
    return out


def _as_dict(node: ast.AST | None, assigns: Mapping[str, ast.AST]) -> ast.Dict | None:
    """``node`` as a dict literal, following one module-level name hop."""
    if isinstance(node, ast.Name):
        node = assigns.get(node.id)
    return node if isinstance(node, ast.Dict) else None


def _const_keys(node: ast.Dict) -> set[str] | None:
    """The dict literal's string keys — ``None`` if any key is dynamic."""
    keys: set[str] = set()
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
        else:
            return None
    return keys


def _dict_value(node: ast.Dict, name: str) -> ast.AST | None:
    """The value node stored under string key ``name``, if present."""
    for key, value in zip(node.keys, node.values):
        if isinstance(key, ast.Constant) and key.value == name:
            return value
    return None


def _keyword(call: ast.Call, name: str) -> ast.AST | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


class _PackModel:
    """The statically visible pack declarations of one module."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.assigns = _module_assigns(ctx.tree)
        #: pack variable name -> ``schemas=`` dict literal (or None)
        self.packs: dict[str, ast.Dict | None] = {}
        #: (pack var, scenario id) pairs declared via ``@var.scenario``
        self.scenario_ids: set[tuple[str, str]] = set()
        #: scenario decorator calls as (pack var, id, call node)
        self.scenarios: list[tuple[str, str, ast.Call]] = []
        #: kernel decorator calls as (pack var, id, call node)
        self.kernels: list[tuple[str, str, ast.Call]] = []

        for name, value in self.assigns.items():
            if isinstance(value, ast.Call):
                target = ctx.resolve(value.func) or dotted_name(value.func) or ""
                if target == "ScenarioPack" or target.endswith(".ScenarioPack"):
                    self.packs[name] = _as_dict(
                        _keyword(value, "schemas"), self.assigns
                    )

        if not self.packs:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for dec in node.decorator_list:
                if not (
                    isinstance(dec, ast.Call)
                    and isinstance(dec.func, ast.Attribute)
                    and isinstance(dec.func.value, ast.Name)
                    and dec.func.value.id in self.packs
                ):
                    continue
                if not (
                    dec.args
                    and isinstance(dec.args[0], ast.Constant)
                    and isinstance(dec.args[0].value, str)
                ):
                    continue
                pack_var = dec.func.value.id
                sid = dec.args[0].value.upper()
                if dec.func.attr == "scenario":
                    self.scenario_ids.add((pack_var, sid))
                    self.scenarios.append((pack_var, sid, dec))
                elif dec.func.attr == "kernel":
                    self.kernels.append((pack_var, sid, dec))

    def schema_for(self, pack_var: str, sid: str, dec: ast.Call) -> ast.Dict | None:
        """The scenario's schema dict: the ``schema=`` kwarg, else the
        pack's ``schemas={...}`` entry for this id (case-insensitive)."""
        explicit = _as_dict(_keyword(dec, "schema"), self.assigns)
        if explicit is not None:
            return explicit
        table = self.packs.get(pack_var)
        if table is None:
            return None
        for key, value in zip(table.keys, table.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and key.value.upper() == sid
            ):
                return _as_dict(value, self.assigns)
        return None


@register_rule(
    "REP010",
    "@PACK.scenario param-schema properties must exactly equal defaults keys",
)
def check_schema_defaults_parity(ctx: ModuleContext) -> Iterator[Diagnostic]:
    """Statically compare each scenario's schema ``properties`` keys with
    its ``defaults`` keys; unresolvable declarations are skipped."""
    model = _PackModel(ctx)
    for pack_var, sid, dec in model.scenarios:
        schema = model.schema_for(pack_var, sid, dec)
        if schema is None:
            continue
        props_node = _as_dict(_dict_value(schema, "properties"), model.assigns)
        if props_node is None:
            continue
        props = _const_keys(props_node)
        defaults_node = _keyword(dec, "defaults")
        if defaults_node is None:
            defaults: set[str] | None = set()
        else:
            defaults_dict = _as_dict(defaults_node, model.assigns)
            defaults = None if defaults_dict is None else _const_keys(defaults_dict)
        if props is None or defaults is None:
            continue
        if props != defaults:
            parts = []
            if props - defaults:
                parts.append(
                    f"schema-only propert{_ies(props - defaults)} "
                    f"{sorted(props - defaults)}"
                )
            if defaults - props:
                parts.append(
                    f"default-only key{_s(defaults - props)} "
                    f"{sorted(defaults - props)}"
                )
            yield ctx.diag(
                dec,
                "REP010",
                f"scenario {sid!r}: param-schema properties must exactly "
                f"equal the defaults keys; {'; '.join(parts)}",
            )


def _s(items: set[str]) -> str:
    return "" if len(items) == 1 else "s"


def _ies(items: set[str]) -> str:
    return "y" if len(items) == 1 else "ies"


@register_rule(
    "REP011",
    "every @PACK.kernel id needs a matching @PACK.scenario in the same module",
)
def check_kernel_has_scenario(ctx: ModuleContext) -> Iterator[Diagnostic]:
    """Flag kernels declared for scenario ids their own module never
    declares — the runtime would only notice at pack registration."""
    model = _PackModel(ctx)
    for pack_var, sid, dec in model.kernels:
        if (pack_var, sid) not in model.scenario_ids:
            yield ctx.diag(
                dec,
                "REP011",
                f"kernel {sid!r} has no matching @{pack_var}.scenario in "
                f"this module",
            )


# ---------------------------------------------------------------------------
# docstring coverage (REP012)
# ---------------------------------------------------------------------------


def _has_doc(node: ast.AST) -> bool:
    return bool((ast.get_docstring(node) or "").strip())


@register_rule(
    "REP012",
    "public definitions in repro.experiments/sim/bench/serve and pack modules "
    "need docstrings",
)
def check_docstrings(ctx: ModuleContext) -> Iterator[Diagnostic]:
    """The docstring-coverage gate as a lint rule: module, public
    top-level functions/classes, and public methods of public classes."""
    if not (ctx.in_package(*_DOCSTRING_PACKAGES) or ctx.is_pack_module):
        return
    if not _has_doc(ctx.tree):
        yield ctx.diag(ctx.tree, "REP012", "module has no docstring")
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_") and not _has_doc(node):
                yield ctx.diag(
                    node,
                    "REP012",
                    f"public function {node.name}() has no docstring",
                )
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            if not _has_doc(node):
                yield ctx.diag(
                    node, "REP012", f"public class {node.name} has no docstring"
                )
            for member in node.body:
                if (
                    isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and not member.name.startswith("_")
                    and not _has_doc(member)
                ):
                    yield ctx.diag(
                        member,
                        "REP012",
                        f"public method {node.name}.{member.name}() has no "
                        f"docstring",
                    )


# ---------------------------------------------------------------------------
# bench metric gating (REP013)
# ---------------------------------------------------------------------------


@register_rule(
    "REP013",
    "bench metrics with a direction must declare a tolerance or floor",
)
def check_metric_slack(ctx: ModuleContext) -> Iterator[Diagnostic]:
    """Flag metric-spec dict literals (``value`` + ``direction`` keys)
    that leave the regression gate's slack implicit."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Dict):
            continue
        keys = _const_keys(node)
        if keys is None:
            continue
        if "direction" in keys and "value" in keys and not keys & {
            "tolerance",
            "floor",
        }:
            yield ctx.diag(
                node,
                "REP013",
                "metric spec declares a direction but neither a tolerance "
                "nor a floor; make the regression gate's slack explicit",
            )
