"""Incremental lint cache: content-hash keyed, bit-identical replay.

The whole-program analyzer re-parses every file and rebuilds the module
graph on each run; in CI that cost is paid twice (cold gate + warm
rerun).  This cache makes the warm run re-analyze *zero* unchanged files
while guaranteeing the emitted diagnostics are byte-identical to a cold
run — cached entries store the final, post-suppression diagnostics, so
replay is verbatim.

Keying:

* every entry lives under a **ruleset fingerprint** — the active rule
  ids, a hash over the linter's own sources, and the Python version —
  so editing any rule, changing ``--select``/``--ignore``, or switching
  interpreters invalidates everything at once;
* per-file entries are keyed ``path -> sha256(content)``;
* the single project-pass entry is keyed on a digest over the sorted
  ``(path, content hash)`` list, because project rules (layering,
  cycles, registration) can change when *any* file changes.

The cache file is written atomically — serialize next to the target and
``os.replace`` into place, the same convention as
:mod:`repro.bench.record` — and is pruned to the current run's file set
so it cannot grow without bound.  A missing, corrupt, or
wrong-fingerprint cache silently degrades to a cold run: the cache can
make a run faster, never different.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Mapping, Sequence

from repro.lint.engine import Diagnostic, Rule

__all__ = ["DEFAULT_CACHE_PATH", "SCHEMA", "LintCache", "ruleset_fingerprint"]

SCHEMA = "repro.lint-cache/v1"

#: Default cache location, relative to the working directory (gitignored).
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


def _canonical_json(payload: object) -> str:
    # repro.utils.serialization.canonical_json imports numpy; the linter
    # must stay stdlib-only, so the same convention is restated here.
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def ruleset_fingerprint(rules: Sequence[Rule]) -> str:
    """A digest that changes when the effective ruleset could change:
    the active rule ids, the linter's own source files, and the Python
    minor version (AST shapes differ across versions)."""
    h = hashlib.sha256()
    h.update(SCHEMA.encode())
    h.update(",".join(sorted(r.rule_id for r in rules)).encode())
    h.update(f"py{sys.version_info.major}.{sys.version_info.minor}".encode())
    lint_dir = Path(__file__).resolve().parent
    for source in sorted(lint_dir.glob("*.py")):
        h.update(source.name.encode())
        try:
            h.update(source.read_bytes())
        except OSError:  # pragma: no cover - unreadable own source
            h.update(b"?")
    return h.hexdigest()


def _diag_to_json(d: Diagnostic) -> dict:
    return {
        "path": d.path,
        "line": d.line,
        "col": d.col,
        "rule": d.rule_id,
        "message": d.message,
    }


def _diag_from_json(obj: dict) -> Diagnostic:
    return Diagnostic(
        path=obj["path"],
        line=obj["line"],
        col=obj["col"],
        rule_id=obj["rule"],
        message=obj["message"],
    )


class LintCache:
    """One loaded cache file, scoped to a ruleset fingerprint."""

    def __init__(self, path: str, fingerprint: str, files: dict, project: dict):
        self.path = path
        self.fingerprint = fingerprint
        self._files = files  # path -> {"hash": ..., "diagnostics": [...]}
        self._project = project  # {"hash": ..., "diagnostics": [...]} or {}

    @classmethod
    def open(cls, path: str, rules: Sequence[Rule]) -> "LintCache":
        """Load ``path`` if it exists and matches the current fingerprint;
        any mismatch or corruption yields an empty cache (a cold run)."""
        fingerprint = ruleset_fingerprint(rules)
        files: dict = {}
        project: dict = {}
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
            if (
                isinstance(payload, dict)
                and payload.get("schema") == SCHEMA
                and payload.get("fingerprint") == fingerprint
            ):
                files = dict(payload.get("files") or {})
                project = dict(payload.get("project") or {})
        except (OSError, ValueError):
            pass  # missing or corrupt cache: degrade to a cold run
        return cls(path, fingerprint, files, project)

    def file_diagnostics(self, path: str, digest: str) -> list[Diagnostic] | None:
        """The cached diagnostics for ``path`` at content hash ``digest``,
        or ``None`` on a miss (file changed or never seen)."""
        entry = self._files.get(path)
        if not isinstance(entry, dict) or entry.get("hash") != digest:
            return None
        try:
            return [_diag_from_json(d) for d in entry["diagnostics"]]
        except (KeyError, TypeError):
            return None

    def project_diagnostics(self, digest: str) -> list[Diagnostic] | None:
        """The cached project-pass diagnostics for the whole-run digest,
        or ``None`` when any scanned file changed."""
        if self._project.get("hash") != digest:
            return None
        try:
            return [_diag_from_json(d) for d in self._project["diagnostics"]]
        except (KeyError, TypeError):
            return None

    def store(
        self,
        files: Mapping[str, tuple[str, Sequence[Diagnostic]]],
        project: tuple[str, Sequence[Diagnostic]] | None,
    ) -> None:
        """Atomically persist this run's results, pruned to its file set.

        Serialize next to the target and ``os.replace`` into place (the
        :mod:`repro.bench.record` convention), so a crashed run can never
        leave a half-written cache behind.  Failure to write is silent —
        caching is an optimization, not an output.
        """
        payload = {
            "schema": SCHEMA,
            "fingerprint": self.fingerprint,
            "files": {
                path: {
                    "hash": digest,
                    "diagnostics": [_diag_to_json(d) for d in diags],
                }
                for path, (digest, diags) in sorted(files.items())
            },
            "project": (
                {
                    "hash": project[0],
                    "diagnostics": [_diag_to_json(d) for d in project[1]],
                }
                if project is not None
                else {}
            ),
        }
        target = Path(self.path)
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=target.name + ".", dir=str(target.parent) or "."
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(_canonical_json(payload))
                    fh.write("\n")
                os.replace(tmp, target)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # read-only checkout etc.: skip caching, never fail the run
