"""Intra-procedural def-use dataflow for the seed-flow rules (stdlib ``ast``).

The REP030 family needs to answer questions one AST node cannot: *does
this expression derive from a seed by arithmetic?*, *was this generator
created outside the loop it is drawn in?*, *do both arms of this paired
comparison consume the same generator?*  This module computes, per
function, the small amount of dataflow those questions need:

* **seed taint** — which local names carry a seed (parameters and loop
  targets with seed-shaped names, iteration over seed containers) and
  which carry a value *derived from a seed by arithmetic* (the
  ``seed + i`` anti-idiom REP030 exists to catch);
* **generator definitions** — names bound to ``np.random.Generator``
  objects (``default_rng``/``Generator``/``as_generator`` calls,
  rng-shaped parameters, one-hop aliases);
* **replication-loop shape** — whether a ``for`` loop (or comprehension
  generator) iterates over replications: spawned seed sequences, a seed
  container, or ``range(n_replications)``.

Everything is a pure function of one ``FunctionDef`` plus the module's
import table — no cross-file state, so results are cacheable per file.
The taint propagation is a fixed point over plain ``NAME = expr``
assignments (tuple unpacking and attribute targets are skipped, never
guessed), which matches the repo's house style of threading seeds and
generators through simple locals.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.lint.engine import ModuleContext

__all__ = [
    "GENERATOR_CONSTRUCTORS",
    "RNG_SEED_SINKS",
    "SPAWN_CALLS",
    "FunctionDataflow",
    "function_defs",
    "is_generator_name",
    "is_replication_count_name",
    "is_seed_name",
]

#: Calls that construct a single ``np.random.Generator`` from a seed.
GENERATOR_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "repro.utils.rng.as_generator",
    }
)

#: Calls whose *seed argument* (first positional, or ``seed=``/``entropy=``)
#: must never be seed arithmetic — the REP030 sinks.
RNG_SEED_SINKS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "repro.utils.rng.as_generator",
        "repro.utils.rng.as_seed_sequence",
        "repro.utils.rng.spawn_seed_sequences",
        "repro.utils.rng.spawn_generators",
        "repro.utils.rng.crn_generators",
    }
)

#: Calls that correctly derive independent streams — iterating their
#: result is the signature of a replication loop.
SPAWN_CALLS = frozenset(
    {
        "repro.utils.rng.spawn_seed_sequences",
        "repro.utils.rng.spawn_generators",
        "repro.utils.rng.crn_generators",
    }
)


def _tokens(name: str) -> list[str]:
    return name.lower().split("_")


def is_seed_name(name: str) -> bool:
    """Whether ``name`` is seed-shaped (``seed``, ``seeds``, ``base_seed``,
    ``seed0``, ``seed_sequences``, ...)."""
    for token in _tokens(name):
        if token in ("seed", "seeds", "entropy"):
            return True
        if token.startswith("seed") and token[4:].isdigit():
            return True
    return False


def is_generator_name(name: str) -> bool:
    """Whether ``name`` is generator-shaped (``rng``, ``arrival_rng``,
    ``generator``, ...) — used only for *parameters*, whose defining call
    is out of sight."""
    return any(token in ("rng", "generator") for token in _tokens(name))


def is_replication_count_name(name: str) -> bool:
    """Whether ``name`` counts replications (``n_replications``,
    ``n_reps``, ``replications``, ...)."""
    return any(
        token in ("rep", "reps", "replication", "replications")
        for token in _tokens(name)
    )


def function_defs(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in ``tree`` (including nested ones)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _target_names(target: ast.AST) -> list[str]:
    """Plain names bound by an assignment/loop target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    return []


@dataclass(frozen=True)
class GeneratorDef:
    """One name bound to a generator: where, and whether it is a parameter
    (parameters have no construction site inside the function)."""

    name: str
    lineno: int
    node: ast.AST
    from_param: bool


class FunctionDataflow:
    """Seed-taint, generator-definition, and loop-shape facts for one
    function.

    ``tainted`` maps a local name to ``"seed"`` (carries a seed) or
    ``"seed-arith"`` (derived from a seed by arithmetic).  ``generators``
    maps names to :class:`GeneratorDef`.  Both are computed by a small
    fixed point over the function's plain assignments, so one-hop chains
    (``s = seed + i`` ... ``default_rng(s)``) resolve.
    """

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef, ctx: "ModuleContext"):
        self.fn = fn
        self.ctx = ctx
        self.tainted: dict[str, str] = {}
        self.generators: dict[str, GeneratorDef] = {}
        self._seed_params()
        self._fixed_point()

    # -- construction -------------------------------------------------

    def _seed_params(self) -> None:
        args = self.fn.args
        params = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ]
        for arg in params:
            if is_seed_name(arg.arg):
                self.tainted[arg.arg] = "seed"
            elif is_generator_name(arg.arg):
                self.generators[arg.arg] = GeneratorDef(
                    name=arg.arg, lineno=self.fn.lineno, node=arg, from_param=True
                )

    def _fixed_point(self) -> None:
        for _ in range(10):  # chains longer than 10 hops do not occur
            changed = False
            for node in ast.walk(self.fn):
                value: ast.AST | None = None
                names: list[str] = []
                if isinstance(node, ast.Assign):
                    value = node.value
                    for target in node.targets:
                        names.extend(_target_names(target) if isinstance(target, ast.Name) else [])
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    names = _target_names(node.target)
                    value = node.value
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    # a loop over a seed container binds seed-carrying targets
                    if self._iterates_seeds(node.iter):
                        for name in _target_names(node.target):
                            if self.tainted.get(name) != "seed":
                                self.tainted[name] = "seed"
                                changed = True
                    continue
                if value is None or not names:
                    continue
                kind = self.seed_kind(value)
                for name in names:
                    if kind is not None and self.tainted.get(name) != kind:
                        self.tainted[name] = kind
                        changed = True
                gen = self._generator_value(value)
                if gen and names[0] not in self.generators:
                    self.generators[names[0]] = GeneratorDef(
                        name=names[0], lineno=node.lineno, node=node, from_param=False
                    )
                    changed = True
            if not changed:
                return

    def _generator_value(self, value: ast.AST) -> bool:
        """Whether ``value`` constructs (or aliases) a single generator."""
        if isinstance(value, ast.Call):
            return (self.ctx.resolve(value.func) or "") in GENERATOR_CONSTRUCTORS
        if isinstance(value, ast.Name):
            return value.id in self.generators
        return False

    # -- queries -------------------------------------------------------

    def seed_kind(self, expr: ast.AST) -> str | None:
        """``"seed"``/``"seed-arith"``/``None`` for an expression.

        Arithmetic (``BinOp``/``UnaryOp``) over any seed-tainted name is
        ``"seed-arith"``; conditional expressions take the worse branch.
        """
        if isinstance(expr, ast.Name):
            return self.tainted.get(expr.id)
        if isinstance(expr, (ast.BinOp, ast.UnaryOp)):
            if any(
                isinstance(sub, ast.Name) and sub.id in self.tainted
                for sub in ast.walk(expr)
            ):
                return "seed-arith"
            return None
        if isinstance(expr, ast.IfExp):
            kinds = {self.seed_kind(expr.body), self.seed_kind(expr.orelse)}
            if "seed-arith" in kinds:
                return "seed-arith"
            if "seed" in kinds:
                return "seed"
        return None

    def _iterates_seeds(self, it: ast.AST) -> bool:
        """Whether iterating ``it`` yields seeds (a seed container or a
        spawn call) — used to taint loop targets."""
        if isinstance(it, ast.Name):
            return it.id in self.tainted or is_seed_name(it.id)
        if isinstance(it, ast.Call):
            resolved = self.ctx.resolve(it.func) or ""
            if resolved in SPAWN_CALLS:
                return True
            if (
                isinstance(it.func, ast.Name)
                and it.func.id in ("enumerate", "zip", "reversed", "sorted", "list", "tuple")
            ):
                return any(self._iterates_seeds(arg) for arg in it.args)
        return False

    def is_replication_loop_iter(self, it: ast.AST) -> bool:
        """Whether ``it`` is replication-shaped: spawned streams, a seed
        container, or ``range(<replication count>)``."""
        if self._iterates_seeds(it):
            return True
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Name):
            if it.func.id == "range":
                return any(
                    isinstance(arg, ast.Name) and is_replication_count_name(arg.id)
                    for arg in it.args
                )
            if it.func.id in ("enumerate", "zip", "reversed", "list", "tuple"):
                return any(self.is_replication_loop_iter(arg) for arg in it.args)
        return False

    def seed_sink_argument(self, call: ast.Call) -> ast.AST | None:
        """The seed-position argument of an RNG-constructor call, or
        ``None`` when ``call`` is not a seed sink / passes no seed."""
        if (self.ctx.resolve(call.func) or "") not in RNG_SEED_SINKS:
            return None
        for kw in call.keywords:
            if kw.arg in ("seed", "entropy"):
                return kw.value
        if call.args:
            return call.args[0]
        return None

    def generator_arguments(self, call: ast.Call) -> list[str]:
        """Generator names passed *as arguments* to ``call`` (the
        receiver of a method call — ``rng.normal()`` — does not count)."""
        out: list[str] = []
        for arg in [*call.args, *[kw.value for kw in call.keywords]]:
            if isinstance(arg, ast.Name) and arg.id in self.generators:
                out.append(arg.id)
            elif isinstance(arg, ast.Starred) and isinstance(arg.value, ast.Name):
                if arg.value.id in self.generators:
                    out.append(arg.value.id)
        return out


def assigned_names(node: ast.AST) -> set[str]:
    """Every plain name (re)bound anywhere inside ``node``."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                out.update(_target_names(target))
        elif isinstance(sub, ast.AnnAssign):
            out.update(_target_names(sub.target))
        elif isinstance(sub, ast.AugAssign):
            out.update(_target_names(sub.target))
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            out.update(_target_names(sub.target))
        elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
            out.update(_target_names(sub.optional_vars))
    return out
