"""Module-scoped rules REP030-REP032: seed-flow discipline via dataflow.

The repo's reproducibility contract derives independent streams with
``spawn_seed_sequences``/``spawn_generators`` (:mod:`repro.utils.rng`),
never with seed arithmetic — ``default_rng(seed + i)`` produces streams
whose statistical independence is unproven and whose collision behaviour
differs across seeds.  These rules use the per-function dataflow pass
(:mod:`repro.lint.dataflow`) to catch the anti-idioms one AST node at a
time cannot:

* ``REP030`` — a seed-derived *arithmetic* expression flowing into the
  seed position of an RNG constructor, directly (``default_rng(seed+i)``)
  or through a local (``s = seed * k`` ... ``default_rng(s)``);
* ``REP031`` — a ``Generator`` created *outside* a replication loop but
  drawn from *inside* it: every replication shares one stream, so
  results depend on replication order and count;
* ``REP032`` — the same generator consumed by both arms of a paired
  comparison (both operands of a ``-``/comparison, or twice in one
  call): common-random-numbers pairing requires *distinct* streams from
  ``crn_generators``, not one stream drawn twice.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dataflow import FunctionDataflow, function_defs
from repro.lint.engine import Diagnostic, ModuleContext, register_rule

__all__ = ["check_seed_arithmetic", "check_shared_stream", "check_paired_reuse"]


@register_rule(
    "REP030",
    "seed arithmetic used to derive an RNG stream (use spawn_seed_sequences)",
)
def check_seed_arithmetic(ctx: ModuleContext) -> Iterator[Diagnostic]:
    for fn in function_defs(ctx.tree):
        flow = FunctionDataflow(fn, ctx)
        if not flow.tainted:
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            seed_arg = flow.seed_sink_argument(node)
            if seed_arg is None:
                continue
            if flow.seed_kind(seed_arg) == "seed-arith":
                yield ctx.diag(
                    node,
                    "REP030",
                    "stream derived by seed arithmetic; use "
                    "spawn_seed_sequences/spawn_generators for independent "
                    "streams",
                )


def _loops(fn: ast.AST) -> Iterator[tuple[ast.AST, ast.AST, list[ast.AST]]]:
    """Every loop-shaped construct in ``fn``: ``(loop node, iter expr,
    body nodes)`` — ``for`` statements and comprehension generators."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter, list(node.body)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if isinstance(node, ast.DictComp):
                    body: list[ast.AST] = [node.key, node.value]
                else:
                    body = [node.elt]
                yield node, gen.iter, body


def _generator_uses(
    flow: FunctionDataflow, body: list[ast.AST]
) -> Iterator[tuple[str, ast.AST]]:
    """``(generator name, node)`` for each *draw* from a known generator
    inside ``body``: a method call on it (``rng.normal()``) or passing it
    as an argument (``simulate(rng, ...)``)."""
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in flow.generators
            ):
                yield func.value.id, node
            for name in flow.generator_arguments(node):
                yield name, node


@register_rule(
    "REP031",
    "Generator created outside a replication loop but drawn inside it",
)
def check_shared_stream(ctx: ModuleContext) -> Iterator[Diagnostic]:
    from repro.lint.dataflow import assigned_names

    for fn in function_defs(ctx.tree):
        flow = FunctionDataflow(fn, ctx)
        if not flow.generators:
            continue
        for loop, it, body in _loops(fn):
            if not flow.is_replication_loop_iter(it):
                continue
            rebound = set()
            for node in body:
                rebound |= assigned_names(node)
            seen: set[str] = set()
            for name, node in _generator_uses(flow, body):
                if name in seen or name in rebound:
                    continue  # rebound per-iteration => fresh stream, fine
                gen = flow.generators[name]
                if gen.lineno >= loop.lineno and not gen.from_param:
                    continue  # created at/after the loop header, not shared in
                seen.add(name)
                yield ctx.diag(
                    node,
                    "REP031",
                    f"generator {name!r} is created outside this replication "
                    f"loop but drawn inside it; replications share one stream "
                    f"— spawn per-replication generators instead",
                )


@register_rule(
    "REP032",
    "same generator feeds both arms of a paired comparison (use crn_generators)",
)
def check_paired_reuse(ctx: ModuleContext) -> Iterator[Diagnostic]:
    for fn in function_defs(ctx.tree):
        flow = FunctionDataflow(fn, ctx)
        if not flow.generators:
            continue
        for node in ast.walk(fn):
            arms: list[ast.AST] = []
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                arms = [node.left, node.right]
            elif isinstance(node, ast.Compare):
                arms = [node.left, *node.comparators]
            elif isinstance(node, ast.Call):
                # one call consuming the same generator twice
                names = flow.generator_arguments(node)
                dupes = {n for n in names if names.count(n) > 1}
                for name in sorted(dupes):
                    yield ctx.diag(
                        node,
                        "REP032",
                        f"generator {name!r} is passed twice to one call; "
                        f"paired arms need distinct CRN streams "
                        f"(repro.utils.rng.crn_generators)",
                    )
                continue
            if len(arms) < 2:
                continue
            per_arm: list[set[str]] = []
            for arm in arms:
                used: set[str] = set()
                for sub in ast.walk(arm):
                    if isinstance(sub, ast.Call):
                        used.update(flow.generator_arguments(sub))
                per_arm.append(used)
            shared: set[str] = set()
            for i in range(len(per_arm)):
                for j in range(i + 1, len(per_arm)):
                    shared |= per_arm[i] & per_arm[j]
            for name in sorted(shared):
                yield ctx.diag(
                    node,
                    "REP032",
                    f"generator {name!r} feeds both arms of this paired "
                    f"comparison; use repro.utils.rng.crn_generators for "
                    f"common-random-number pairing",
                )
