"""The ``repro-lint`` command-line interface.

Statically checks the determinism, RNG-stream, layering, and
pack-contract invariants over any set of files or directories::

    repro-lint                        # lint src/, benchmarks/, scripts/
    repro-lint src benchmarks examples/demo_pack
    repro-lint --select REP001,REP003 src
    repro-lint --ignore REP012 src
    repro-lint --packs                # + modules of discovered packs
    repro-lint --output json          # repro.lint/v1 document on stdout
    repro-lint --no-cache             # force a cold run
    repro-lint --list-rules

Without an installed entry point the module form works identically::

    PYTHONPATH=src python -m repro.lint.cli

Diagnostics print one per line as ``path:line:col: REPNNN message`` (or,
with ``--output json``, as one canonical-JSON ``repro.lint/v1``
document).  Results for unchanged files are replayed from the
incremental cache (``.repro-lint-cache.json`` by default, gitignored);
warm and cold runs emit byte-identical stdout — the re-analyzed count in
the stderr summary is the only difference.  Exit codes match the other
CLIs: 0 clean, 1 findings, 2 usage or internal errors.  Unparseable
files are reported as a single ``REP000`` diagnostic (exit 1), never a
traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.lint.engine import LintError, all_rules, lint_paths

__all__ = ["main", "build_parser", "CliError", "DEFAULT_PATHS"]

#: Directories linted when no paths are given (those that exist).
DEFAULT_PATHS = ("src", "benchmarks", "scripts")


class CliError(Exception):
    """A user-facing CLI error (printed without a traceback, exit 2)."""


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically check the repo's determinism, layering, "
        "seed-flow, and pack-contract invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: "
        f"{' '.join(DEFAULT_PATHS)}, those that exist)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="run only these comma-separated rule ids (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="skip these comma-separated rule ids (repeatable)",
    )
    parser.add_argument(
        "--packs",
        action="store_true",
        help="additionally lint the modules of every discovered scenario "
        "pack (built-in and entry-point)",
    )
    parser.add_argument(
        "--output",
        choices=("text", "json"),
        default="text",
        help="diagnostic format: classic text lines or one canonical-JSON "
        "repro.lint/v1 document (default: text)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="incremental cache file (default: .repro-lint-cache.json)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache (re-analyze everything)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (diagnostics still print)",
    )
    return parser


def _split_ids(chunks: Sequence[str]) -> list[str]:
    """Flatten repeated/comma-separated rule-id flags, upper-cased."""
    out = []
    for chunk in chunks:
        out.extend(part.strip().upper() for part in chunk.split(",") if part.strip())
    return out


def _pack_module_files() -> list[str]:
    """Absolute paths of every module defining a discovered pack's
    simulate functions (imports the registry; broken entry-point packs
    are skipped with the registry's own warning)."""
    import importlib

    from repro.experiments.packs import discovered_packs

    files: dict[str, None] = {}
    for pack, _source in discovered_packs():
        for sc in pack.scenarios.values():
            module = importlib.import_module(sc.simulate.__module__)
            path = getattr(module, "__file__", None)
            if path:
                files.setdefault(path)
    return list(files)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-lint`` console script."""
    from repro.lint.cache import DEFAULT_CACHE_PATH
    from repro.lint.output import render_json, render_text

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.list_rules:
            for rule_id, rule in sorted(all_rules().items()):
                print(f"{rule_id}  {rule.summary}")
            return 0
        paths = args.paths or [p for p in DEFAULT_PATHS if _exists(p)]
        extra = _pack_module_files() if args.packs else []
        if not paths and not extra:
            raise CliError(
                f"no paths given and none of the defaults "
                f"({', '.join(DEFAULT_PATHS)}) exist here"
            )
        cache_path = None if args.no_cache else (args.cache or DEFAULT_CACHE_PATH)
        report = lint_paths(
            paths,
            select=_split_ids(args.select) or None,
            ignore=_split_ids(args.ignore) or None,
            extra_files=extra,
            cache_path=cache_path,
        )
        diagnostics = report.diagnostics
        if args.output == "json":
            print(render_json(diagnostics, report.rules))
        elif diagnostics:
            print(render_text(diagnostics))
        if not args.quiet:
            # volatile stats (re-analyzed counts) go to stderr ONLY, so
            # warm and cold stdout stay byte-identical
            reanalyzed = (
                f", {report.n_reanalyzed} re-analyzed"
                if cache_path is not None
                else ""
            )
            if diagnostics:
                n_bad = len({d.path for d in diagnostics})
                print(
                    f"repro-lint: {len(diagnostics)} finding(s) in {n_bad} "
                    f"of {report.n_files} file(s){reanalyzed}",
                    file=sys.stderr,
                )
            else:
                print(
                    f"repro-lint: {report.n_files} file(s) clean "
                    f"({len(report.rules)} rules{reanalyzed})",
                    file=sys.stderr,
                )
        return 1 if diagnostics else 0
    except (CliError, LintError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


def _exists(path: str) -> bool:
    from pathlib import Path

    return Path(path).exists()


if __name__ == "__main__":
    raise SystemExit(main())
