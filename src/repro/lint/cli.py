"""The ``repro-lint`` command-line interface.

Statically checks the determinism, RNG-stream, and pack-contract
invariants over any set of files or directories::

    repro-lint                        # lint src/ and benchmarks/
    repro-lint src benchmarks examples/demo_pack
    repro-lint --select REP001,REP003 src
    repro-lint --ignore REP012 src
    repro-lint --packs                # + modules of discovered packs
    repro-lint --list-rules

Without an installed entry point the module form works identically::

    PYTHONPATH=src python -m repro.lint.cli

Diagnostics print one per line as ``path:line:col: REPNNN message``.
Exit codes match the other CLIs: 0 clean, 1 findings, 2 usage or
internal errors.  Unparseable files are reported as a single ``REP000``
diagnostic (exit 1), never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.lint.engine import LintError, active_rules, all_rules, lint_paths

__all__ = ["main", "build_parser", "CliError", "DEFAULT_PATHS"]

#: Directories linted when no paths are given (those that exist).
DEFAULT_PATHS = ("src", "benchmarks")


class CliError(Exception):
    """A user-facing CLI error (printed without a traceback, exit 2)."""


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically check the repo's determinism and "
        "pack-contract invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: "
        f"{' '.join(DEFAULT_PATHS)}, those that exist)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="run only these comma-separated rule ids (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="skip these comma-separated rule ids (repeatable)",
    )
    parser.add_argument(
        "--packs",
        action="store_true",
        help="additionally lint the modules of every discovered scenario "
        "pack (built-in and entry-point)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (diagnostics still print)",
    )
    return parser


def _split_ids(chunks: Sequence[str]) -> list[str]:
    """Flatten repeated/comma-separated rule-id flags, upper-cased."""
    out = []
    for chunk in chunks:
        out.extend(part.strip().upper() for part in chunk.split(",") if part.strip())
    return out


def _pack_module_files() -> list[str]:
    """Absolute paths of every module defining a discovered pack's
    simulate functions (imports the registry; broken entry-point packs
    are skipped with the registry's own warning)."""
    import importlib

    from repro.experiments.packs import discovered_packs

    files: dict[str, None] = {}
    for pack, _source in discovered_packs():
        for sc in pack.scenarios.values():
            module = importlib.import_module(sc.simulate.__module__)
            path = getattr(module, "__file__", None)
            if path:
                files.setdefault(path)
    return list(files)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-lint`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.list_rules:
            for rule_id, rule in sorted(all_rules().items()):
                print(f"{rule_id}  {rule.summary}")
            return 0
        paths = args.paths or [p for p in DEFAULT_PATHS if _exists(p)]
        extra = _pack_module_files() if args.packs else []
        if not paths and not extra:
            raise CliError(
                f"no paths given and none of the defaults "
                f"({', '.join(DEFAULT_PATHS)}) exist here"
            )
        diagnostics, n_files = lint_paths(
            paths,
            select=_split_ids(args.select) or None,
            ignore=_split_ids(args.ignore) or None,
            extra_files=extra,
        )
        for diag in diagnostics:
            print(diag.format())
        if not args.quiet:
            n_rules = len(active_rules(_split_ids(args.select) or None,
                                       _split_ids(args.ignore) or None))
            if diagnostics:
                n_bad = len({d.path for d in diagnostics})
                print(
                    f"repro-lint: {len(diagnostics)} finding(s) in {n_bad} "
                    f"of {n_files} file(s)",
                    file=sys.stderr,
                )
            else:
                print(
                    f"repro-lint: {n_files} file(s) clean "
                    f"({n_rules} rules)",
                    file=sys.stderr,
                )
        return 1 if diagnostics else 0
    except (CliError, LintError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


def _exists(path: str) -> bool:
    from pathlib import Path

    return Path(path).exists()


if __name__ == "__main__":
    raise SystemExit(main())
