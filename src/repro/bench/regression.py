"""Regression gating over ``repro.bench/v1`` trajectories.

:func:`compare_metrics` checks one candidate record against one baseline
record metric by metric; :func:`check_regression` matches the newest
candidate per ``(benchmark_id, config)`` with its baseline — either the
newest matching record of a separate baseline trajectory, or the
previous matching record of the candidate's own file — and aggregates
the verdicts.  Semantics:

* only metrics with a ``direction`` are gated; a ``"higher"`` metric
  regresses when ``value < baseline * (1 - tol)``, a ``"lower"`` metric
  when ``value > baseline * (1 + tol)``;
* ``tol`` is the larger of the gate's default tolerance and the
  metric's own ``tolerance`` field (per-metric tolerance *floors* —
  a metric can demand more slack than the default, never less);
* a ``floor`` on a ``"higher"`` metric is an absolute minimum enforced
  even without a baseline;
* a benchmark or metric with no baseline counterpart is *skipped*, not
  failed — new benchmarks land green and start gating on the next run.

Exit-code contract of the CLI (``scripts/check_bench_regression.py``):
0 when everything passes or is skipped, 2 on any regression, 1 on
malformed input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["MetricCheck", "GateEntry", "compare_metrics", "check_regression"]


@dataclass(frozen=True)
class MetricCheck:
    """Verdict for one gated metric of one benchmark."""

    name: str
    status: str  # "pass" | "fail" | "skip"
    value: float
    baseline: float | None
    tolerance: float
    detail: str = ""


@dataclass(frozen=True)
class GateEntry:
    """Aggregate verdict for one ``(benchmark_id, config)`` pair."""

    benchmark_id: str
    config: str
    status: str  # "pass" | "fail" | "skip"
    checks: list[MetricCheck] = field(default_factory=list)
    detail: str = ""


def compare_metrics(
    candidate: Mapping,
    baseline: Mapping | None,
    *,
    default_tolerance: float = 0.25,
) -> list[MetricCheck]:
    """Gate every directed metric of ``candidate`` against ``baseline``.

    ``baseline`` may be ``None`` (new benchmark): floors still apply,
    baseline comparisons are skipped.  Metrics present only in the
    baseline are ignored — removing a metric is a schema change for
    review, not a perf regression.
    """
    base_metrics = (baseline or {}).get("metrics", {})
    checks: list[MetricCheck] = []
    for name, spec in candidate.get("metrics", {}).items():
        direction = spec.get("direction")
        if direction is None:
            continue
        value = float(spec["value"])
        tol = max(float(default_tolerance), float(spec.get("tolerance", 0.0)))
        floor = spec.get("floor")
        if floor is not None and direction == "higher" and value < float(floor):
            checks.append(
                MetricCheck(
                    name,
                    "fail",
                    value,
                    None,
                    tol,
                    f"value {value:.4g} below absolute floor {float(floor):.4g}",
                )
            )
            continue
        base_spec = base_metrics.get(name)
        if base_spec is None:
            checks.append(
                MetricCheck(name, "skip", value, None, tol, "no baseline metric")
            )
            continue
        base = float(base_spec["value"])
        if direction == "higher":
            bound = base * (1.0 - tol)
            ok = value >= bound
            detail = f"{value:.4g} vs baseline {base:.4g} (min {bound:.4g})"
        else:
            bound = base * (1.0 + tol)
            ok = value <= bound
            detail = f"{value:.4g} vs baseline {base:.4g} (max {bound:.4g})"
        checks.append(
            MetricCheck(name, "pass" if ok else "fail", value, base, tol, detail)
        )
    return checks


def check_regression(
    candidates: list[dict],
    baselines: list[dict] | None = None,
    *,
    default_tolerance: float = 0.25,
    benchmark_id: str | None = None,
    config: str | None = None,
) -> list[GateEntry]:
    """Gate the newest candidate record per ``(benchmark_id, config)``.

    With ``baselines`` given, each candidate is compared against the
    newest matching record there; without, against the *previous*
    matching record of ``candidates`` itself (the committed-trajectory
    workflow: CI appends a fresh record and gates it against the line
    that was committed).  ``benchmark_id``/``config`` filter which
    candidates are gated.
    """
    from repro.bench.record import latest_record

    seen: set[tuple[str, str]] = set()
    entries: list[GateEntry] = []
    for idx in range(len(candidates) - 1, -1, -1):
        rec = candidates[idx]
        key = (rec["benchmark_id"], rec.get("config", "full"))
        if key in seen:
            continue
        seen.add(key)
        if benchmark_id is not None and key[0] != benchmark_id:
            continue
        if config is not None and key[1] != config:
            continue
        if baselines is not None:
            base = latest_record(baselines, key[0], key[1])
        else:
            base = latest_record(candidates[:idx], key[0], key[1])
        checks = compare_metrics(
            rec, base, default_tolerance=default_tolerance
        )
        if base is None and not any(c.status == "fail" for c in checks):
            entries.append(
                GateEntry(key[0], key[1], "skip", checks, "no baseline record")
            )
            continue
        if any(c.status == "fail" for c in checks):
            status = "fail"
        elif any(c.status == "pass" for c in checks):
            status = "pass"
        else:
            status = "skip"
        entries.append(GateEntry(key[0], key[1], status, checks))
    entries.reverse()
    return entries
