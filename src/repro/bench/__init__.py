"""Persisted benchmark trajectory and regression gating.

The ``repro.bench`` package gives every benchmark run a durable,
machine-readable footprint: :mod:`repro.bench.record` defines the
``repro.bench/v1`` record schema and the append-only JSON-Lines
trajectory file (``BENCH_a0x.json`` at the repo root), and
:mod:`repro.bench.regression` compares the newest record per benchmark
against a committed baseline with per-metric tolerances — the engine
behind ``scripts/check_bench_regression.py``, the CI gate that makes a
silent performance regression a red build instead of a forgotten
stdout table.
"""

from __future__ import annotations

from repro.bench.record import (
    SCHEMA,
    BenchRecordError,
    append_record,
    environment_fingerprint,
    latest_record,
    load_trajectory,
    make_record,
)
from repro.bench.regression import (
    GateEntry,
    MetricCheck,
    check_regression,
    compare_metrics,
)

__all__ = [
    "SCHEMA",
    "BenchRecordError",
    "append_record",
    "environment_fingerprint",
    "latest_record",
    "load_trajectory",
    "make_record",
    "GateEntry",
    "MetricCheck",
    "check_regression",
    "compare_metrics",
]
