"""The ``repro.bench/v1`` benchmark record and its trajectory file.

A *record* is one benchmark run: an identifier, a config label
(``"full"`` for the default sizes, ``"smoke"`` for the reduced CI set),
the package version, an environment fingerprint, and a flat mapping of
named metrics.  Each metric is a dict with at least ``value``; it may
declare how the regression gate should treat it:

``direction``
    ``"higher"`` (e.g. a speedup) or ``"lower"`` (e.g. a wall time).
    Metrics without a direction are recorded but never gated.
``tolerance``
    Relative slack for the baseline comparison, overriding the gate's
    default (a *tolerance floor*: the gate uses the larger of the two).
``floor``
    Absolute minimum for ``direction="higher"`` metrics, enforced even
    when no baseline exists.

The *trajectory* is an append-only JSON-Lines file: one canonical-JSON
record per line (via :func:`repro.utils.serialization.canonical_json`),
newest last.  Appends rewrite the file to a sibling temp file and
``os.replace`` it, so a crash can never leave a torn line behind;
:func:`load_trajectory` still degrades corrupt content into a clean
:class:`BenchRecordError` naming the offending line rather than an
arbitrary ``json`` traceback.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.utils.serialization import canonical_json

__all__ = [
    "SCHEMA",
    "DEFAULT_TRAJECTORY",
    "BenchRecordError",
    "environment_fingerprint",
    "make_record",
    "append_record",
    "load_trajectory",
    "latest_record",
]

SCHEMA = "repro.bench/v1"

# repo-root trajectory file name (the a0x ablation benches feed it)
DEFAULT_TRAJECTORY = "BENCH_a0x.json"

_DIRECTIONS = ("higher", "lower")


class BenchRecordError(ValueError):
    """A benchmark record or trajectory file is malformed."""


def environment_fingerprint() -> dict[str, str]:
    """Identify the machine/toolchain a record was produced on.

    Interpreter and numpy versions plus the platform string — enough to
    tell whether two records are comparable, deliberately free of
    anything volatile (hostnames, pids, timestamps).
    """
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "executable": os.path.basename(sys.executable),
    }


def _validate_metrics(metrics: Mapping[str, Any]) -> dict[str, dict]:
    """Normalise and validate the per-metric dicts of a record."""
    if not metrics:
        raise BenchRecordError("a bench record needs at least one metric")
    out: dict[str, dict] = {}
    for name, spec in metrics.items():
        if not isinstance(spec, Mapping):
            # bare numbers are accepted as ungated values
            spec = {"value": spec}
        if "value" not in spec:
            raise BenchRecordError(f"metric {name!r} has no 'value'")
        value = float(spec["value"])
        entry: dict[str, Any] = {"value": value}
        direction = spec.get("direction")
        if direction is not None:
            if direction not in _DIRECTIONS:
                raise BenchRecordError(
                    f"metric {name!r}: direction must be one of {_DIRECTIONS}, "
                    f"got {direction!r}"
                )
            entry["direction"] = direction
        for key in ("tolerance", "floor"):
            if key in spec and spec[key] is not None:
                entry[key] = float(spec[key])
        if "unit" in spec:
            entry["unit"] = str(spec["unit"])
        out[str(name)] = entry
    return out


def make_record(
    benchmark_id: str,
    metrics: Mapping[str, Any],
    *,
    config: str = "full",
    version: str | None = None,
    meta: Mapping[str, Any] | None = None,
    timestamp: str | None = None,
) -> dict:
    """Build a validated ``repro.bench/v1`` record.

    ``metrics`` maps metric names to either bare numbers (recorded,
    never gated) or dicts with ``value`` and the optional gate fields
    described in the module docstring.  ``version`` defaults to the
    installed :mod:`repro` version and ``timestamp`` to the current UTC
    time; ``meta`` is free-form run context (replication counts,
    parameter trims) that the gate ignores.
    """
    if version is None:
        from repro import __version__

        version = __version__
    if timestamp is None:
        timestamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    record = {
        "schema": SCHEMA,
        "benchmark_id": str(benchmark_id),
        "config": str(config),
        "created": str(timestamp),
        "version": str(version),
        "environment": environment_fingerprint(),
        "metrics": _validate_metrics(metrics),
    }
    if meta:
        record["meta"] = dict(meta)
    return record


def append_record(path: str | Path, record: Mapping[str, Any]) -> Path:
    """Append one record to the trajectory at ``path`` (atomically).

    The record is validated by round-tripping through
    :func:`make_record`'s metric checks, serialised as one canonical
    JSON line, and written after the existing content to a temp file in
    the same directory which then ``os.replace``-s the original — the
    trajectory is at every instant either the old file or the new one,
    never a torn intermediate.  Returns the path written.
    """
    path = Path(path)
    if record.get("schema") != SCHEMA:
        raise BenchRecordError(
            f"record schema {record.get('schema')!r} is not {SCHEMA!r}"
        )
    _validate_metrics(record.get("metrics", {}))
    line = canonical_json(record)
    existing = path.read_bytes() if path.exists() else b""
    if existing and not existing.endswith(b"\n"):
        existing += b"\n"
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(existing)
            fh.write(line.encode("utf-8"))
            fh.write(b"\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_trajectory(path: str | Path) -> list[dict]:
    """Parse a trajectory file into its records, oldest first.

    Raises :class:`BenchRecordError` naming the line number when a line
    is not valid JSON or not a ``repro.bench/v1`` record — a trajectory
    with a corrupt (e.g. truncated) trailing record fails cleanly
    instead of leaking a decoder traceback.
    """
    path = Path(path)
    records: list[dict] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise BenchRecordError(
                f"{path}:{lineno}: corrupt bench record ({exc.msg})"
            ) from exc
        if not isinstance(rec, dict) or rec.get("schema") != SCHEMA:
            raise BenchRecordError(
                f"{path}:{lineno}: not a {SCHEMA} record"
            )
        if "benchmark_id" not in rec or "metrics" not in rec:
            raise BenchRecordError(
                f"{path}:{lineno}: record missing benchmark_id/metrics"
            )
        records.append(rec)
    return records


def latest_record(
    records: list[dict], benchmark_id: str, config: str | None = None
) -> dict | None:
    """Newest record for ``benchmark_id`` (optionally a specific config).

    "Newest" is file order — trajectories are append-only, so the last
    matching line is the most recent run.
    """
    for rec in reversed(records):
        if rec.get("benchmark_id") != benchmark_id:
            continue
        if config is not None and rec.get("config") != config:
            continue
        return rec
    return None
