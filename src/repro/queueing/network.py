"""Multiclass queueing-network simulator.

A network is a set of single- or multi-server *stations* and a set of job
*classes*; each class belongs to a station, has its own Poisson exogenous
arrivals, service distribution and holding cost, and routes Markovianly to
another class (possibly at another station) or out of the system — exactly
the MQN model of survey §3. A single station with feedback is Klimov's
model; a single station without feedback is the multiclass M/G/1 of the cµ
rule; two stations with deterministic routing give the Rybko–Stolyar
instability example.

Scheduling policies per station: FIFO, nonpreemptive static priority,
preemptive-resume static priority. Priorities come from any index order, so
cµ, Klimov, and fluid-derived rules plug in directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.sim.engine import Simulator
from repro.sim.monitor import TallyMonitor, TimeWeightedMonitor
from repro.utils.validation import check_substochastic_matrix

__all__ = [
    "ClassConfig",
    "StationConfig",
    "QueueingNetwork",
    "NetworkResult",
    "simulate_network",
    "simulate_network_replications",
]


@dataclass(frozen=True)
class ClassConfig:
    """One job class: its station, service law, exogenous arrival rate and
    holding-cost rate."""

    station: int
    service: Distribution
    arrival_rate: float = 0.0
    cost: float = 1.0
    name: str = ""

    def __post_init__(self):
        if self.arrival_rate < 0 or self.cost < 0:
            raise ValueError("arrival_rate and cost must be nonnegative")


@dataclass(frozen=True)
class StationConfig:
    """One service station.

    ``discipline`` is ``'priority'`` (static order, nonpreemptive),
    ``'preemptive'`` (static order, preemptive-resume), ``'fifo'``
    (head-of-line across classes by arrival instant) or ``'lcfs'``
    (nonpreemptive last-come-first-served — a work-conserving discipline
    with the same mean waits as FIFO but different higher moments, useful
    for exercising the conservation laws). ``priority`` lists class ids
    from highest to lowest priority and is required for the two priority
    disciplines.
    """

    n_servers: int = 1
    discipline: str = "priority"
    priority: tuple = ()

    def __post_init__(self):
        if self.n_servers < 1:
            raise ValueError("stations need at least one server")
        if self.discipline not in ("priority", "preemptive", "fifo", "lcfs"):
            raise ValueError(f"unknown discipline {self.discipline!r}")


class QueueingNetwork:
    """Immutable network description (classes, stations, routing)."""

    def __init__(
        self,
        classes: Sequence[ClassConfig],
        stations: Sequence[StationConfig],
        routing: np.ndarray | None = None,
    ):
        self.classes = tuple(classes)
        self.stations = tuple(stations)
        n = len(self.classes)
        if routing is None:
            routing = np.zeros((n, n))
        self.routing = check_substochastic_matrix(np.asarray(routing, dtype=float), "routing")
        if self.routing.shape != (n, n):
            raise ValueError("routing must be n_classes x n_classes")
        for j, cc in enumerate(self.classes):
            if not 0 <= cc.station < len(self.stations):
                raise ValueError(f"class {j} references unknown station {cc.station}")
        for k, st in enumerate(self.stations):
            if st.discipline in ("priority", "preemptive"):
                local = [j for j in range(n) if self.classes[j].station == k]
                if sorted(st.priority) != sorted(local):
                    raise ValueError(
                        f"station {k} priority {st.priority} must order exactly "
                        f"its classes {local}"
                    )

    @property
    def n_classes(self) -> int:
        """Number of job classes."""
        return len(self.classes)

    def effective_rates(self) -> np.ndarray:
        """Traffic-equation visit rates ``lambda = alpha (I - P)^{-1}``."""
        alpha = np.array([c.arrival_rate for c in self.classes])
        n = self.n_classes
        return np.linalg.solve((np.eye(n) - self.routing).T, alpha)

    def station_loads(self) -> np.ndarray:
        """Nominal load ``rho_k = sum_{j at k} lambda_j m_j / n_servers``."""
        lam = self.effective_rates()
        rho = np.zeros(len(self.stations))
        for j, cc in enumerate(self.classes):
            rho[cc.station] += lam[j] * cc.service.mean
        return rho / np.array([s.n_servers for s in self.stations])


@dataclass(frozen=True)
class NetworkResult:
    """Steady-state estimates from one simulation run."""

    mean_queue_lengths: np.ndarray  # time-avg number in system per class
    mean_waits: np.ndarray  # mean wait (queue time) per class visit
    visit_counts: np.ndarray  # completed visits per class (post-warmup)
    cost_rate: float  # sum_j c_j * Lbar_j
    final_backlog: float  # total jobs in system at the horizon
    peak_backlog: float  # max total jobs seen (instability telltale)
    horizon: float
    trajectory: np.ndarray | None = None  # optional (time, total jobs) samples


class _Jb:
    """Mutable in-flight job record."""

    __slots__ = ("cls", "arrived", "remaining", "started")

    def __init__(self, cls: int, arrived: float):
        self.cls = cls
        self.arrived = arrived
        self.remaining = -1.0  # sampled at first service start
        self.started = -1.0


def simulate_network(
    network: QueueingNetwork,
    horizon: float,
    rng: np.random.Generator,
    *,
    warmup_fraction: float = 0.1,
    max_events: int = 20_000_000,
    record_trajectory: bool = False,
    trajectory_points: int = 200,
) -> NetworkResult:
    """Simulate the network and return steady-state estimates.

    Statistics are reset at ``warmup_fraction * horizon``. For unstable
    systems the estimates do not converge, but ``final_backlog`` /
    ``peak_backlog`` and the optional trajectory expose the divergence
    (E13's measurement).
    """
    n = network.n_classes
    sim = Simulator()
    queues: list[list[_Jb]] = [[] for _ in range(n)]
    # per-station: list of (job, completion_event, start_time) per busy server
    busy: list[list] = [[] for _ in network.stations]
    qmon = [TimeWeightedMonitor() for _ in range(n)]
    wmon = [TallyMonitor() for _ in range(n)]
    visits = np.zeros(n, dtype=np.int64)
    total_in_system = TimeWeightedMonitor()
    traj_t: list[float] = []
    traj_q: list[float] = []

    prio_pos: list[dict[int, int]] = []
    for st in network.stations:
        prio_pos.append({c: p for p, c in enumerate(st.priority)})

    cum_routing = np.cumsum(network.routing, axis=1)

    def class_priority(k: int, cls: int) -> int:
        return prio_pos[k].get(cls, 0)

    def pick_next(k: int) -> _Jb | None:
        st = network.stations[k]
        if st.discipline in ("fifo", "lcfs"):
            newest = st.discipline == "lcfs"
            best, best_cls, best_pos = None, -1, -1
            for j in range(n):
                if network.classes[j].station == k and queues[j]:
                    pos = -1 if newest else 0
                    cand = queues[j][pos]
                    if best is None or (
                        cand.arrived > best.arrived
                        if newest
                        else cand.arrived < best.arrived
                    ):
                        best, best_cls, best_pos = cand, j, pos
            if best is not None:
                queues[best_cls].pop(best_pos)
            return best
        for cls in network.stations[k].priority:
            if queues[cls]:
                return queues[cls].pop(0)
        return None

    def start_service(k: int, job: _Jb) -> None:
        if job.remaining < 0:
            job.remaining = float(network.classes[job.cls].service.sample(rng))
        if job.started < 0:
            job.started = sim.now
            wmon[job.cls].record(sim.now - job.arrived)
        entry = [job, None, sim.now]
        entry[1] = sim.schedule(job.remaining, lambda e=entry: complete(k, e))
        busy[k].append(entry)

    def complete(k: int, entry) -> None:
        job = entry[0]
        busy[k].remove(entry)
        visits[job.cls] += 1
        leave_class(job.cls)
        # route
        u = rng.random()
        row = cum_routing[job.cls]
        if u < row[-1]:
            nxt = int(np.searchsorted(row, u, side="right"))
            enter_class(nxt, _Jb(nxt, sim.now))
        else:
            total_in_system.increment(sim.now, -1.0)
        serve_if_possible(k)

    def leave_class(cls: int) -> None:
        qmon[cls].increment(sim.now, -1.0)

    def enter_class(cls: int, job: _Jb) -> None:
        qmon[cls].increment(sim.now, +1.0)
        k = network.classes[cls].station
        st = network.stations[k]
        if len(busy[k]) < st.n_servers:
            start_service(k, job)
            return
        if st.discipline == "preemptive":
            # preempt the lowest-priority running job if strictly lower
            worst = max(busy[k], key=lambda e: class_priority(k, e[0].cls))
            if class_priority(k, cls) < class_priority(k, worst[0].cls):
                wjob, wev, wstart = worst
                wev.cancel()
                busy[k].remove(worst)
                wjob.remaining -= sim.now - wstart
                wjob.remaining = max(wjob.remaining, 1e-12)
                queues[wjob.cls].insert(0, wjob)
                start_service(k, job)
                return
        queues[cls].append(job)

    def serve_if_possible(k: int) -> None:
        st = network.stations[k]
        while len(busy[k]) < st.n_servers:
            job = pick_next(k)
            if job is None:
                return
            start_service(k, job)

    def exo_arrival(cls: int) -> None:
        rate = network.classes[cls].arrival_rate
        total_in_system.increment(sim.now, +1.0)
        enter_class(cls, _Jb(cls, sim.now))
        sim.schedule(rng.exponential(1.0 / rate), lambda: exo_arrival(cls))

    for j in range(n):
        if network.classes[j].arrival_rate > 0:
            sim.schedule(
                rng.exponential(1.0 / network.classes[j].arrival_rate),
                lambda j=j: exo_arrival(j),
            )

    warmup = warmup_fraction * horizon

    def end_warmup() -> None:
        for m in qmon:
            m.reset(sim.now)
        for m in wmon:
            m.reset()
        visits[:] = 0

    if warmup > 0:
        sim.schedule(warmup, end_warmup, priority=-10)

    if record_trajectory:
        step = horizon / trajectory_points

        def snapshot() -> None:
            traj_t.append(sim.now)
            traj_q.append(total_in_system.level)
            if sim.now + step <= horizon:
                sim.schedule(step, snapshot, priority=10)

        sim.schedule(0.0, snapshot, priority=10)

    sim.run(until=horizon, max_events=max_events)

    Lbar = np.array([m.time_average(horizon) for m in qmon])
    W = np.array([m.mean if m.count else math.nan for m in wmon])
    costs = np.array([c.cost for c in network.classes])
    traj = np.column_stack([traj_t, traj_q]) if record_trajectory else None
    return NetworkResult(
        mean_queue_lengths=Lbar,
        mean_waits=W,
        visit_counts=visits.copy(),
        cost_rate=float(np.dot(costs, Lbar)),
        final_backlog=float(total_in_system.level),
        peak_backlog=float(total_in_system.peak),
        horizon=horizon,
        trajectory=traj,
    )


def simulate_network_replications(
    network: QueueingNetwork,
    horizon: float,
    n_replications: int,
    *,
    seed: int | None = None,
    warmup_fraction: float = 0.1,
    level: float = 0.95,
):
    """Run independent replications of :func:`simulate_network` and return
    confidence intervals for the cost rate and per-class queue lengths.

    Returns a dict with keys ``cost_rate`` (a
    :class:`repro.utils.stats.ConfidenceInterval`) and ``queue_lengths`` (a
    list of intervals, one per class). Streams are spawned via SeedSequence
    so replications never share randomness.
    """
    from repro.utils.rng import spawn_generators
    from repro.utils.stats import mean_confidence_interval

    if n_replications < 2:
        raise ValueError("need at least two replications for an interval")
    rngs = spawn_generators(seed, n_replications)
    costs = np.empty(n_replications)
    lengths = np.empty((n_replications, network.n_classes))
    for r, rng in enumerate(rngs):
        res = simulate_network(
            network, horizon, rng, warmup_fraction=warmup_fraction
        )
        costs[r] = res.cost_rate
        lengths[r] = res.mean_queue_lengths
    return {
        "cost_rate": mean_confidence_interval(costs, level=level),
        "queue_lengths": [
            mean_confidence_interval(lengths[:, j], level=level)
            for j in range(network.n_classes)
        ],
    }
