"""Polling systems: one server, several queues, switchover times
(Levy–Sidi [25], E15).

The server visits queues in cyclic order; moving from queue i to the next
takes a random switchover time. Service at each visit follows a local
policy:

* ``exhaustive`` — serve the queue until it empties (including new arrivals
  during the visit);
* ``gated`` — serve exactly the customers present at the server's arrival;
* ``limited`` — serve at most one customer per visit.

Changeover costs qualitatively change optimal control: a cµ rule that
ignores them can switch itself into starvation. The classical quantitative
anchor is the Boxma–Groenendijk *pseudo-conservation law*, implemented in
:func:`pseudo_conservation_rhs` and verified against the simulator.

The simulator pre-generates per-queue Poisson arrival streams and walks the
server sequentially — no event calendar needed for a single-server system,
and the inner loop stays tight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import Distribution

__all__ = ["PollingSystem", "PollingResult", "pseudo_conservation_rhs"]

_POLICIES = ("exhaustive", "gated", "limited")


@dataclass(frozen=True)
class PollingResult:
    """Steady-state estimates for one polling simulation."""

    mean_waits: np.ndarray  # per-queue mean waiting time (queue time)
    served: np.ndarray  # customers served per queue (post-warmup)
    cycle_time: float  # mean duration of a full server cycle
    weighted_wait_sum: float  # sum_i rho_i * W_i (pseudo-conservation LHS)


class PollingSystem:
    """A cyclic polling system.

    Parameters
    ----------
    arrival_rates:
        Poisson rate per queue.
    services:
        Service-time distribution per queue.
    switchovers:
        Switchover-time distribution entering each queue (the time to *reach*
        queue i from its predecessor).
    policy:
        'exhaustive', 'gated' or 'limited' (applied at every queue).
    """

    def __init__(
        self,
        arrival_rates: Sequence[float],
        services: Sequence[Distribution],
        switchovers: Sequence[Distribution],
        policy: str = "exhaustive",
    ):
        self.arrival_rates = np.asarray(arrival_rates, dtype=float)
        n = self.arrival_rates.size
        if len(services) != n or len(switchovers) != n:
            raise ValueError("services and switchovers must match arrival_rates")
        if np.any(self.arrival_rates < 0):
            raise ValueError("arrival rates must be nonnegative")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        self.services = tuple(services)
        self.switchovers = tuple(switchovers)
        self.policy = policy
        # Degenerate-at-zero switchovers (mean and variance both 0) are the
        # only case in which an empty sweep cannot advance the clock; the
        # simulator then idles to the next arrival instead of spinning.
        self._switchover_always_zero = all(
            s.mean == 0 and s.variance == 0 for s in self.switchovers
        )
        rho = float(np.sum(self.arrival_rates * [s.mean for s in self.services]))
        if rho >= 1:
            raise ValueError(f"unstable: total service load rho = {rho:.3f} >= 1")
        self.rho = rho

    @property
    def n_queues(self) -> int:
        """Number of queues."""
        return self.arrival_rates.size

    def simulate(
        self,
        horizon: float,
        rng: np.random.Generator,
        *,
        warmup_fraction: float = 0.1,
    ) -> PollingResult:
        """Simulate until ``horizon`` (server time) and return estimates."""
        n = self.n_queues
        # Pre-generate arrival streams with margin; extend lazily if needed.
        arrivals: list[np.ndarray] = []
        for i in range(n):
            lam = self.arrival_rates[i]
            if lam == 0:
                arrivals.append(np.array([np.inf]))
                continue
            m = int(lam * horizon * 1.3) + 50
            gaps = rng.exponential(1.0 / lam, size=m)
            ts = np.cumsum(gaps)
            while ts[-1] < horizon:
                more = rng.exponential(1.0 / lam, size=m // 2 + 10)
                ts = np.concatenate([ts, ts[-1] + np.cumsum(more)])
            arrivals.append(ts)
        heads = [0] * n  # next-arrival pointer per queue
        pending: list[list[float]] = [[] for _ in range(n)]  # arrival times waiting
        warmup = warmup_fraction * horizon
        waits = np.zeros(n)
        served = np.zeros(n, dtype=np.int64)
        t = 0.0
        i = 0
        cycles = 0
        cycle_start = 0.0
        cycle_durations: list[float] = []

        def admit(i: int, upto: float) -> None:
            ts = arrivals[i]
            h = heads[i]
            while h < ts.size and ts[h] <= upto:
                pending[i].append(ts[h])
                h += 1
            heads[i] = h

        while t < horizon:
            # switch into queue i
            t += float(self.switchovers[i].sample(rng))
            admit(i, t)
            if self.policy == "gated":
                batch = len(pending[i])
            elif self.policy == "limited":
                batch = min(1, len(pending[i]))
            else:
                batch = -1  # exhaustive: until empty
            served_this_visit = 0
            while pending[i] and (batch < 0 or served_this_visit < batch):
                arr = pending[i].pop(0)
                if t > warmup:
                    waits[i] += t - arr
                    served[i] += 1
                t += float(self.services[i].sample(rng))
                served_this_visit += 1
                admit(i, t)
                if batch < 0 and t > horizon * 4:  # runaway guard
                    raise RuntimeError("polling simulation diverged")
            i = (i + 1) % n
            if i == 0:
                if (
                    self._switchover_always_zero
                    and t == cycle_start
                    and not any(pending)
                ):
                    # Zero-length sweep with a.s.-zero switchovers: the
                    # server would spin at this instant forever (with merely
                    # an atom at 0 the next sweep's draws can still advance
                    # the clock, so no jump is taken there). Idle until the
                    # next arrival, and do not record the sweep as a cycle
                    # (a stream of 0.0 durations would bias the mean cycle
                    # time).
                    nxt = min(
                        (
                            float(arrivals[j][heads[j]])
                            for j in range(n)
                            if heads[j] < arrivals[j].size
                        ),
                        default=np.inf,
                    )
                    t = min(max(t, nxt), horizon)
                    cycle_start = t
                    continue
                if cycles > 0:
                    cycle_durations.append(t - cycle_start)
                cycle_start = t
                cycles += 1

        mean_waits = np.where(served > 0, waits / np.maximum(served, 1), np.nan)
        rho_i = self.arrival_rates * np.array([s.mean for s in self.services])
        weighted = float(np.nansum(rho_i * mean_waits))
        return PollingResult(
            mean_waits=mean_waits,
            served=served,
            cycle_time=float(np.mean(cycle_durations)) if cycle_durations else np.nan,
            weighted_wait_sum=weighted,
        )


def pseudo_conservation_rhs(
    arrival_rates: Sequence[float],
    services: Sequence[Distribution],
    switchovers: Sequence[Distribution],
    policy: str = "exhaustive",
) -> float:
    """Boxma–Groenendijk pseudo-conservation law for cyclic polling:

    ``sum_i rho_i W_i = rho sum_i lam_i E[B_i^2] / (2 (1 - rho))
    + rho * E[S_tot^2] / (2 E[S_tot])
    + (E[S_tot] / (2 (1 - rho))) * (rho^2 -+ sum_i rho_i^2)``

    with ``S_tot`` the total switchover per cycle; the last bracket is
    ``rho^2 - sum rho_i^2`` for exhaustive and ``rho^2 + sum rho_i^2`` for
    gated service. (No closed form for limited service.)
    """
    lam = np.asarray(arrival_rates, dtype=float)
    b1 = np.array([s.mean for s in services])
    b2 = np.array([s.second_moment for s in services])
    rho_i = lam * b1
    rho = float(rho_i.sum())
    if rho >= 1:
        raise ValueError("rho must be < 1")
    s_means = np.array([s.mean for s in switchovers])
    s_vars = np.array([s.variance for s in switchovers])
    s1 = float(s_means.sum())
    s2 = float(s_vars.sum() + s1**2)  # independent switchovers
    term1 = rho * float(np.sum(lam * b2)) / (2.0 * (1.0 - rho))
    term2 = rho * s2 / (2.0 * s1) if s1 > 0 else 0.0
    if policy == "exhaustive":
        bracket = rho**2 - float(np.sum(rho_i**2))
    elif policy == "gated":
        bracket = rho**2 + float(np.sum(rho_i**2))
    else:
        raise ValueError("pseudo-conservation law implemented for exhaustive/gated only")
    term3 = s1 / (2.0 * (1.0 - rho)) * bracket
    return term1 + term2 + term3
