"""Exact MDP ground truth for small queueing-control problems.

The survey notes that queueing scheduling problems "can be cast in the
framework of dynamic programming" but blow up. For *small* truncated
systems we can actually do it: uniformize the multiclass M/M/1 into a
discrete-time MDP over buffer-occupancy states and solve for the optimal
average cost over **all** stationary preemptive policies. This is the
strongest possible check of the cµ rule (E10) and of Klimov's rule with
feedback (E11): not merely best among static priority orders, but optimal
over every nonanticipative stationary policy of the truncated system.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.mdp.core import FiniteMDP
from repro.mdp.solvers import relative_value_iteration
from repro.utils.validation import check_substochastic_matrix

__all__ = [
    "multiclass_mm1_mdp",
    "optimal_preemptive_average_cost",
    "discounted_optimal_vs_static",
]


def multiclass_mm1_mdp(
    arrival_rates: Sequence[float],
    service_rates: Sequence[float],
    costs: Sequence[float],
    buffer_cap: int,
    feedback: np.ndarray | None = None,
) -> tuple[FiniteMDP, list[tuple], float]:
    """Uniformized MDP of a preemptive multiclass M/M/1 with per-class
    buffers truncated at ``buffer_cap`` (arrivals to a full buffer are
    lost — choose the cap so loss is negligible at the loads studied).

    Action ``a`` serves class ``a`` (allowed when nonempty, or any action
    when the system is empty); rewards are negative holding costs.
    ``feedback[i, j]`` optionally routes a completed class-i job to class j
    (Klimov's model). Returns ``(mdp, states, uniformization_rate)``.
    """
    lam = np.asarray(arrival_rates, dtype=float)
    mu = np.asarray(service_rates, dtype=float)
    c = np.asarray(costs, dtype=float)
    n = lam.size
    if mu.size != n or c.size != n:
        raise ValueError("dimension mismatch")
    if feedback is None:
        feedback = np.zeros((n, n))
    feedback = check_substochastic_matrix(np.asarray(feedback, dtype=float), "feedback")
    if buffer_cap < 1:
        raise ValueError("buffer_cap must be >= 1")
    Lambda = float(lam.sum() + mu.max())  # uniformization constant

    states = list(itertools.product(range(buffer_cap + 1), repeat=n))
    index_of = {s: i for i, s in enumerate(states)}
    S = len(states)
    T = np.zeros((n, S, S))
    R = np.zeros((n, S))
    action_sets = []
    for i, s in enumerate(states):
        nonempty = [a for a in range(n) if s[a] > 0]
        acts = nonempty if nonempty else list(range(n))
        action_sets.append(acts)
        hold = float(np.dot(c, s))
        for a in acts:
            R[a, i] = -hold / Lambda  # cost accrues per unit time
            # arrivals
            used = 0.0
            for j in range(n):
                p = lam[j] / Lambda
                if p == 0.0:
                    continue
                nxt = list(s)
                if s[j] < buffer_cap:
                    nxt[j] += 1
                T[a, i, index_of[tuple(nxt)]] += p
                used += p
            # service completion of the served class (if any job there)
            if s[a] > 0:
                p = mu[a] / Lambda
                # route to class j w.p. feedback[a, j], else exit
                for j in range(n):
                    q = feedback[a, j]
                    if q == 0.0:
                        continue
                    nxt = list(s)
                    nxt[a] -= 1
                    if nxt[j] < buffer_cap:
                        nxt[j] += 1
                    T[a, i, index_of[tuple(nxt)]] += p * q
                exit_p = 1.0 - float(feedback[a].sum())
                nxt = list(s)
                nxt[a] -= 1
                T[a, i, index_of[tuple(nxt)]] += p * exit_p
                used += p
            # self-loop for the residual uniformization mass
            T[a, i, i] += 1.0 - used
    return FiniteMDP(T, R, action_sets=action_sets), states, Lambda


def optimal_preemptive_average_cost(
    arrival_rates: Sequence[float],
    service_rates: Sequence[float],
    costs: Sequence[float],
    buffer_cap: int,
    feedback: np.ndarray | None = None,
    *,
    tol: float = 1e-9,
) -> tuple[float, np.ndarray, list[tuple]]:
    """Optimal long-run average holding-cost rate of the truncated system
    over all stationary preemptive policies, plus the optimal action per
    state. The average *reward* of the uniformized chain is per transition;
    multiplying by the uniformization rate converts back to cost per unit
    time."""
    mdp, states, Lambda = multiclass_mm1_mdp(
        arrival_rates, service_rates, costs, buffer_cap, feedback
    )
    sol = relative_value_iteration(mdp, tol=tol)
    cost_rate = -sol.gain * Lambda
    return float(cost_rate), sol.policy, states


def discounted_optimal_vs_static(
    arrival_rates: Sequence[float],
    service_rates: Sequence[float],
    costs: Sequence[float],
    buffer_cap: int,
    discount_rate: float,
    feedback: np.ndarray | None = None,
    *,
    start: tuple | None = None,
) -> tuple[float, float, tuple]:
    """Tcha–Pliska's extension [38]: with a *time-discounted* objective the
    optimal policy for the feedback queue is still a static priority rule.

    Solves the uniformized MDP exactly under the equivalent discrete
    discount factor ``beta = Lambda / (Lambda + discount_rate)`` and
    compares the optimum to the best *static priority order* (evaluated
    exactly on the same MDP). Returns
    ``(optimal_value, best_static_value, best_static_order)`` — discounted
    total costs from ``start`` (default: the empty system), as positive
    numbers.
    """
    from repro.mdp.solvers import policy_iteration

    lam = np.asarray(arrival_rates, dtype=float)
    n = lam.size
    if discount_rate <= 0:
        raise ValueError("discount_rate must be positive")
    mdp, states, Lambda = multiclass_mm1_mdp(
        arrival_rates, service_rates, costs, buffer_cap, feedback
    )
    beta = Lambda / (Lambda + discount_rate)
    sol = policy_iteration(mdp, beta)
    if start is None:
        start = tuple(0 for _ in range(n))
    i0 = states.index(tuple(start))
    opt = -float(sol.value[i0])

    best_val, best_order = np.inf, None
    for order in itertools.permutations(range(n)):
        pos = {cls: p for p, cls in enumerate(order)}
        policy = np.empty(len(states), dtype=int)
        for i, s in enumerate(states):
            nonempty = [a for a in range(n) if s[a] > 0]
            acts = nonempty if nonempty else list(range(n))
            policy[i] = min(acts, key=lambda a: pos[a])
        val = -float(mdp.policy_value(policy, beta)[i0])
        if val < best_val:
            best_val, best_order = val, order
    return opt, best_val, tuple(best_order)
