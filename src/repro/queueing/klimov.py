"""Klimov's model [24]: a multiclass M/G/1 queue with Markovian feedback.

On completing service, a class-i job becomes class j with probability
``p_ij`` and leaves with probability ``1 - sum_j p_ij``. Klimov proved that
the average holding cost is minimised by a static priority rule whose
indices are computed by an N-step algorithm; without feedback it reduces to
the cµ rule (E11).

The implementation computes the indices as *branching-bandit Gittins
indices* (Weiss [45], Bertsimas–Niño-Mora [4]) by a largest-index-first
recursion directly analogous to Varaiya–Walrand–Buyukkoc:

For a continuation set ``C`` and class ``i``, serving a class-i job and
chasing it while it stays in ``C`` costs expected effort

``T_C(i) = m_i + sum_{j in C} p_ij T_C(j)``

and achieves an expected holding-rate reduction

``D_C(i) = c_i - e_C(i)``, where ``e_C(i) = sum_{j notin C} p_ij c_j +
sum_{j in C} p_ij e_C(j)``

(the expected holding rate of whatever the job has become when it first
exits ``C``; 0 if it has left). The class index is
``gamma_i = max_{C ni i} D_C(i) / T_C(i)``, attained, as in VWB, with ``C``
the set of classes already ranked above ``i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.indices import StaticIndexRule
from repro.distributions.base import Distribution
from repro.utils.validation import check_substochastic_matrix

__all__ = [
    "KlimovModel",
    "effective_arrival_rates",
    "klimov_indices",
    "klimov_order",
    "klimov_rule",
]


@dataclass(frozen=True)
class KlimovModel:
    """Parameters of a Klimov network.

    Attributes
    ----------
    arrival_rates:
        Exogenous Poisson rates ``alpha_j`` (entries may be 0).
    services:
        Per-class service-time distributions.
    costs:
        Holding-cost rates ``c_j``.
    feedback:
        Substochastic routing matrix ``P`` (row deficit = exit probability).
    """

    arrival_rates: np.ndarray
    services: tuple
    costs: np.ndarray
    feedback: np.ndarray

    def __post_init__(self):
        lam = np.asarray(self.arrival_rates, dtype=float)
        c = np.asarray(self.costs, dtype=float)
        P = check_substochastic_matrix(np.asarray(self.feedback, dtype=float), "feedback")
        n = lam.size
        if len(self.services) != n or c.size != n or P.shape != (n, n):
            raise ValueError("all parameter arrays must share the class dimension")
        if np.any(lam < 0) or np.any(c < 0):
            raise ValueError("rates and costs must be nonnegative")
        # feedback must be transient (jobs eventually leave)
        eig = np.max(np.abs(np.linalg.eigvals(P)))
        if eig >= 1 - 1e-9:
            raise ValueError("feedback matrix must have spectral radius < 1")
        object.__setattr__(self, "arrival_rates", lam)
        object.__setattr__(self, "services", tuple(self.services))
        object.__setattr__(self, "costs", c)
        object.__setattr__(self, "feedback", P)

    @property
    def n_classes(self) -> int:
        """Number of job classes."""
        return self.arrival_rates.size

    @property
    def mean_services(self) -> np.ndarray:
        """Vector of mean service times."""
        return np.array([s.mean for s in self.services])

    @property
    def load(self) -> float:
        """Total traffic intensity ``rho = sum_j lambda_j m_j`` using the
        effective (feedback-inflated) arrival rates."""
        lam_eff = effective_arrival_rates(self.arrival_rates, self.feedback)
        return float(np.dot(lam_eff, self.mean_services))


def effective_arrival_rates(arrival_rates: Sequence[float], feedback: np.ndarray) -> np.ndarray:
    """Total visit rates ``lambda = alpha (I - P)^{-1}`` including feedback
    re-entries (the traffic equations)."""
    alpha = np.asarray(arrival_rates, dtype=float)
    P = np.asarray(feedback, dtype=float)
    n = alpha.size
    return np.linalg.solve((np.eye(n) - P).T, alpha)


def klimov_indices(
    costs: Sequence[float], mean_services: Sequence[float], feedback: np.ndarray
) -> np.ndarray:
    """Klimov's priority indices by the largest-index-first recursion (see
    module docstring). Reduces to ``c_j / m_j`` when ``feedback`` is zero."""
    c = np.asarray(costs, dtype=float)
    m = np.asarray(mean_services, dtype=float)
    P = check_substochastic_matrix(np.asarray(feedback, dtype=float), "feedback")
    n = c.size
    if m.size != n or P.shape != (n, n):
        raise ValueError("dimension mismatch")
    if np.any(m <= 0):
        raise ValueError("mean services must be positive")

    gamma = np.full(n, np.nan)
    ranked: list[int] = []
    unranked = set(range(n))
    while unranked:
        C = ranked
        best_i, best_ratio = -1, -np.inf
        for i in unranked:
            if C:
                # candidate continuation set C u {i}: one extra linear solve
                idxC = list(C) + [i]
                Pcc = P[np.ix_(idxC, idxC)]
                Inv = np.linalg.inv(np.eye(len(idxC)) - Pcc)
                out = [j for j in range(n) if j not in set(idxC)]
                T = Inv @ m[idxC]
                e = Inv @ (P[np.ix_(idxC, out)] @ c[out]) if out else np.zeros(len(idxC))
                Ti, ei = T[-1], e[-1]
            else:
                out = [j for j in range(n) if j != i]
                pii = P[i, i]
                Ti = m[i] / (1.0 - pii)
                ei = (P[i, out] @ c[out]) / (1.0 - pii)
            ratio = (c[i] - ei) / Ti
            if ratio > best_ratio + 1e-15:
                best_ratio, best_i = ratio, i
        gamma[best_i] = best_ratio
        ranked.append(best_i)
        unranked.discard(best_i)
    return gamma


def klimov_order(
    costs: Sequence[float], mean_services: Sequence[float], feedback: np.ndarray
) -> list[int]:
    """Classes in Klimov priority order (highest index first)."""
    gamma = klimov_indices(costs, mean_services, feedback)
    return list(np.lexsort((np.arange(gamma.size), -gamma)))


def klimov_rule(
    costs: Sequence[float], mean_services: Sequence[float], feedback: np.ndarray
) -> StaticIndexRule:
    """Klimov's rule as a :class:`StaticIndexRule` over class ids."""
    gamma = klimov_indices(costs, mean_services, feedback)
    return StaticIndexRule({j: float(v) for j, v in enumerate(gamma)}, name="Klimov")
