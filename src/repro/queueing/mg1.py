"""Multiclass M/G/1 analytics: P–K formula, Cobham priority waits, the cµ
rule (Cox–Smith [15], E10).

The scheduling problem: N job classes share one server; class j arrives
Poisson(``alpha_j``), has service distribution ``G_j`` with mean ``1/mu_j``
and incurs holding cost ``c_j`` per unit time in system. Over nonpreemptive
nonanticipative work-conserving policies, the steady-state cost rate
``sum_j c_j E[L_j]`` is minimised by the static priority order with indices
``c_j mu_j`` — the cµ rule.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.conservation import priority_performance_vector
from repro.core.indices import StaticIndexRule
from repro.distributions.base import Distribution

__all__ = [
    "mm1_metrics",
    "mg1_waiting_time",
    "cmu_indices",
    "cmu_order",
    "order_average_cost",
    "optimal_average_cost",
    "preemptive_priority_sojourns",
    "preemptive_order_average_cost",
    "preemptive_optimal_average_cost",
]


def mm1_metrics(arrival_rate: float, service_rate: float) -> dict[str, float]:
    """Classical M/M/1 steady-state metrics (sanity anchors for the
    simulator): utilisation, L, Lq, W, Wq."""
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("need arrival_rate >= 0 and service_rate > 0")
    rho = arrival_rate / service_rate
    if rho >= 1:
        raise ValueError(f"unstable: rho = {rho:.3f} >= 1")
    L = rho / (1 - rho)
    W = 1.0 / (service_rate - arrival_rate)
    return {
        "rho": rho,
        "L": L,
        "Lq": L - rho,
        "W": W,
        "Wq": W - 1.0 / service_rate,
    }


def mg1_waiting_time(arrival_rate: float, service: Distribution) -> float:
    """Pollaczek–Khinchine mean waiting time (time in queue) of an M/G/1
    FIFO queue: ``W_q = lambda E[S^2] / (2 (1 - rho))``."""
    rho = arrival_rate * service.mean
    if rho >= 1:
        raise ValueError(f"unstable: rho = {rho:.3f} >= 1")
    return arrival_rate * service.second_moment / (2.0 * (1.0 - rho))


def cmu_indices(costs: Sequence[float], mean_services: Sequence[float]) -> np.ndarray:
    """The cµ priority indices ``c_j / E[S_j]`` (higher = serve first)."""
    c = np.asarray(costs, dtype=float)
    m = np.asarray(mean_services, dtype=float)
    if c.shape != m.shape or np.any(m <= 0) or np.any(c < 0):
        raise ValueError("costs/mean_services must align, with m > 0, c >= 0")
    return c / m


def cmu_order(costs: Sequence[float], mean_services: Sequence[float]) -> list[int]:
    """Classes in cµ priority order (highest index first)."""
    idx = cmu_indices(costs, mean_services)
    return list(np.lexsort((np.arange(idx.size), -idx)))


def cmu_rule(costs: Sequence[float], mean_services: Sequence[float]) -> StaticIndexRule:
    """The cµ rule as a :class:`StaticIndexRule` over class ids."""
    idx = cmu_indices(costs, mean_services)
    return StaticIndexRule({j: float(v) for j, v in enumerate(idx)}, name="c-mu")


def order_average_cost(
    arrival_rates: Sequence[float],
    services: Sequence[Distribution],
    costs: Sequence[float],
    order: Sequence[int],
) -> float:
    """Exact steady-state holding-cost rate ``sum_j c_j E[L_j]`` of a strict
    nonpreemptive priority order, via Cobham waits + Little's law
    (``E[L_j] = alpha_j (W_j + E[S_j])``)."""
    lam = np.asarray(arrival_rates, dtype=float)
    c = np.asarray(costs, dtype=float)
    ms = np.array([s.mean for s in services])
    m2 = np.array([s.second_moment for s in services])
    W = priority_performance_vector(lam, ms, m2, order)
    L = lam * (W + ms)
    return float(np.dot(c, L))


def optimal_average_cost(
    arrival_rates: Sequence[float],
    services: Sequence[Distribution],
    costs: Sequence[float],
) -> tuple[float, list[int]]:
    """The cµ-optimal cost rate and the optimal priority order (E10)."""
    ms = [s.mean for s in services]
    order = cmu_order(costs, ms)
    return order_average_cost(arrival_rates, services, costs, order), order


def preemptive_priority_sojourns(
    arrival_rates: Sequence[float],
    services: Sequence[Distribution],
    order: Sequence[int],
) -> np.ndarray:
    """Mean *sojourn* times (wait + service) per class under preemptive-
    resume static priorities in an M/G/1 queue:

    ``T_k = E[S_k] / (1 - sigma_{k-1})
            + W0^{(k)} / ((1 - sigma_{k-1})(1 - sigma_k))``

    where classes above k (and k itself) define ``sigma_k`` and
    ``W0^{(k)} = sum_{i <= k} lambda_i E[S_i^2] / 2`` — class k is entirely
    blind to lower classes under preemption.
    """
    lam = np.asarray(arrival_rates, dtype=float)
    n = lam.size
    if sorted(order) != list(range(n)):
        raise ValueError("order must be a permutation of the classes")
    ms = np.array([s.mean for s in services])
    m2 = np.array([s.second_moment for s in services])
    rho = lam * ms
    if rho.sum() >= 1:
        raise ValueError(f"unstable: rho = {rho.sum():.3f} >= 1")
    T = np.zeros(n)
    sigma_prev = 0.0
    w0 = 0.0
    for cls in order:
        w0 += lam[cls] * m2[cls] / 2.0
        sigma_k = sigma_prev + rho[cls]
        T[cls] = ms[cls] / (1.0 - sigma_prev) + w0 / ((1.0 - sigma_prev) * (1.0 - sigma_k))
        sigma_prev = sigma_k
    return T


def preemptive_order_average_cost(
    arrival_rates: Sequence[float],
    services: Sequence[Distribution],
    costs: Sequence[float],
    order: Sequence[int],
) -> float:
    """Steady-state holding-cost rate of a preemptive-resume priority order
    (Little: ``E[L_j] = lambda_j T_j``)."""
    lam = np.asarray(arrival_rates, dtype=float)
    c = np.asarray(costs, dtype=float)
    T = preemptive_priority_sojourns(arrival_rates, services, order)
    return float(np.dot(c, lam * T))


def preemptive_optimal_average_cost(
    arrival_rates: Sequence[float],
    services: Sequence[Distribution],
    costs: Sequence[float],
) -> tuple[float, list[int]]:
    """The preemptive cµ cost rate and order — for exponential services this
    is optimal over *all* nonanticipative policies, which is why it serves
    as the pooled-relaxation value in the heavy-traffic experiment (E12)."""
    ms = [s.mean for s in services]
    order = cmu_order(costs, ms)
    return preemptive_order_average_cost(arrival_rates, services, costs, order), order
