"""Parallel-server multiclass scheduling and heavy-traffic optimality
(Glazebrook–Niño-Mora [22], E12).

For a multiclass M/M/m queue the cµ/Klimov rule is only a heuristic, but
the achievable-region analysis yields a suboptimality bound that vanishes
in heavy traffic. The experiment: sweep the traffic intensity ``rho -> 1``
and compare the simulated cost of the cµ rule on ``m`` servers against the
*pooled* lower bound — the same workload served by one server of speed
``m`` under its optimal (cµ) policy, a relaxation whose optimal cost no
``m``-server policy can beat. The ratio's convergence to 1 exhibits the
paper's heavy-traffic asymptotic optimality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.continuous import Exponential
from repro.queueing.mg1 import cmu_order, preemptive_optimal_average_cost
from repro.queueing.network import (
    ClassConfig,
    QueueingNetwork,
    StationConfig,
    simulate_network,
)

__all__ = ["pooled_lower_bound", "parallel_server_experiment", "HeavyTrafficPoint", "build_mmk"]


def build_mmk(
    arrival_rates: Sequence[float],
    service_rates: Sequence[float],
    costs: Sequence[float],
    m: int,
    *,
    priority: Sequence[int] | None = None,
    preemptive: bool = False,
) -> QueueingNetwork:
    """A single-station multiclass M/M/m under a static priority order
    (default: cµ)."""
    lam = np.asarray(arrival_rates, dtype=float)
    mu = np.asarray(service_rates, dtype=float)
    c = np.asarray(costs, dtype=float)
    if priority is None:
        priority = cmu_order(c, 1.0 / mu)
    classes = [
        ClassConfig(station=0, service=Exponential(mu[j]), arrival_rate=lam[j], cost=c[j])
        for j in range(lam.size)
    ]
    st = StationConfig(
        n_servers=m,
        discipline="preemptive" if preemptive else "priority",
        priority=tuple(priority),
    )
    return QueueingNetwork(classes, [st])


def pooled_lower_bound(
    arrival_rates: Sequence[float],
    service_rates: Sequence[float],
    costs: Sequence[float],
    m: int,
) -> float:
    """Optimal cost rate of the pooled relaxation: one server of speed
    ``m`` (all rates multiplied by m), solved exactly by the *preemptive*
    cµ rule — optimal over all policies for exponential services, and a
    true lower bound because a speed-m server can emulate any m-server
    schedule by processor splitting."""
    mu = np.asarray(service_rates, dtype=float)
    services = [Exponential(m * r) for r in mu]
    value, _ = preemptive_optimal_average_cost(arrival_rates, services, costs)
    return value


@dataclass(frozen=True)
class HeavyTrafficPoint:
    """One sweep point: traffic intensity, simulated cµ cost on m servers,
    pooled lower bound, and their ratio."""

    rho: float
    cmu_cost: float
    pooled_bound: float

    @property
    def ratio(self) -> float:
        """cµ-on-m-servers cost over the pooled bound (>= 1, -> 1 in heavy
        traffic)."""
        return self.cmu_cost / self.pooled_bound


def parallel_server_experiment(
    service_rates: Sequence[float],
    costs: Sequence[float],
    m: int,
    rho_values: Sequence[float],
    rng: np.random.Generator,
    *,
    horizon: float = 50_000.0,
    mix: Sequence[float] | None = None,
) -> list[HeavyTrafficPoint]:
    """Sweep ``rho`` and measure cµ's gap to the pooled bound.

    Arrival rates are ``lam_j = rho * m * mix_j * mu_j`` (so that the total
    load is ``rho * m``); ``mix`` defaults to uniform across classes.
    """
    mu = np.asarray(service_rates, dtype=float)
    c = np.asarray(costs, dtype=float)
    n = mu.size
    mix = np.full(n, 1.0 / n) if mix is None else np.asarray(mix, dtype=float)
    if not np.isclose(mix.sum(), 1.0):
        raise ValueError("mix must sum to 1")
    out = []
    rho0 = min(rho_values)
    for rho in rho_values:
        if not 0 < rho < 1:
            raise ValueError("rho values must be in (0, 1)")
        lam = rho * m * mix * mu
        net = build_mmk(lam, mu, c, m)
        # relaxation time grows like 1/(1-rho)^2; stretch the horizon so the
        # high-traffic points are as converged as the low-traffic ones
        h = horizon * (1.0 - rho0) / (1.0 - rho)
        res = simulate_network(net, h, rng, warmup_fraction=0.2)
        lb = pooled_lower_bound(lam, mu, c, m)
        out.append(HeavyTrafficPoint(rho=float(rho), cmu_cost=res.cost_rate, pooled_bound=lb))
    return out
