"""Fluid approximations of multiclass queueing networks (Chen–Yao [11],
Atkins–Chen [3], E14).

The fluid model replaces stochastic queues by deterministic buffer levels
``q_j(t)`` obeying

``dq_j/dt = alpha_j - mu_j u_j(t) + sum_i p_ij mu_i u_i(t)``

where ``u_j`` is the fraction of class j's station devoted to j
(``sum_{j at k} u_j <= 1``). Two uses surveyed:

* **stability**: a policy whose fluid model drains to zero in finite time
  from every start is stable in the original network (Dai's theorem; the
  converse failure is E13);
* **policy design**: priority/effort rules derived from the fluid
  optimal-control problem perform well in the stochastic network.

The integrator uses small-step Euler with a per-step fixed-point pass on
the effort allocation so that empty buffers with inflow are held at zero
(the standard fluid dynamics of priority disciplines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.queueing.network import QueueingNetwork
from repro.utils.validation import check_substochastic_matrix

__all__ = ["FluidModel", "fluid_trajectory", "fluid_drain_time", "is_fluid_stable"]


@dataclass(frozen=True)
class FluidModel:
    """Deterministic fluid counterpart of a multiclass network.

    ``virtual_stations`` optionally lists groups of classes whose *combined*
    effort is capped at 1. This implements the Dai–Vande Vate augmentation:
    the naive fluid model of a priority policy can be stable while the
    stochastic network diverges (Rybko–Stolyar, E13), because after the
    network polarises, certain class pairs at *different* stations are never
    served simultaneously. Declaring them a virtual station restores the
    missing constraint; the augmented fluid's stability condition is the
    virtual load being below 1.
    """

    alpha: np.ndarray  # exogenous inflow rates
    mu: np.ndarray  # service rates (1 / mean service)
    routing: np.ndarray  # substochastic class-to-class matrix
    station_of: np.ndarray  # class -> station
    priority: tuple  # per station: class ids, highest priority first
    virtual_stations: tuple = ()  # groups of class ids sharing capacity 1

    def __post_init__(self):
        alpha = np.asarray(self.alpha, dtype=float)
        mu = np.asarray(self.mu, dtype=float)
        P = check_substochastic_matrix(np.asarray(self.routing, dtype=float), "routing")
        st = np.asarray(self.station_of, dtype=np.int64)
        n = alpha.size
        if mu.size != n or P.shape != (n, n) or st.size != n:
            raise ValueError("dimension mismatch")
        if np.any(mu <= 0) or np.any(alpha < 0):
            raise ValueError("mu must be positive, alpha nonnegative")
        object.__setattr__(self, "alpha", alpha)
        object.__setattr__(self, "mu", mu)
        object.__setattr__(self, "routing", P)
        object.__setattr__(self, "station_of", st)
        object.__setattr__(self, "priority", tuple(tuple(p) for p in self.priority))
        vs = tuple(tuple(int(j) for j in group) for group in self.virtual_stations)
        for group in vs:
            if any(not 0 <= j < n for j in group):
                raise ValueError("virtual station references unknown class")
        object.__setattr__(self, "virtual_stations", vs)

    @classmethod
    def from_network(
        cls, network: QueueingNetwork, virtual_stations: tuple = ()
    ) -> "FluidModel":
        """Extract the fluid data (rates, routing, priorities) from a
        stochastic network description; optionally add virtual-station
        groups (see class docstring)."""
        alpha = np.array([c.arrival_rate for c in network.classes])
        mu = np.array([1.0 / c.service.mean for c in network.classes])
        st = np.array([c.station for c in network.classes])
        prio = []
        for k, s in enumerate(network.stations):
            if s.priority:
                prio.append(tuple(s.priority))
            else:  # FIFO fluid: serve classes proportionally — approximate
                prio.append(tuple(j for j in range(network.n_classes) if st[j] == k))
        return cls(alpha=alpha, mu=mu, routing=network.routing,
                   station_of=st, priority=tuple(prio),
                   virtual_stations=virtual_stations)

    @property
    def n_classes(self) -> int:
        """Number of fluid classes."""
        return self.alpha.size

    def allocation(self, q: np.ndarray) -> np.ndarray:
        """Effort fractions ``u`` under strict priorities at the current
        buffer levels.

        The fluid dynamics of a priority discipline are a linear
        complementarity system: a station gives its highest-priority
        *nonempty* class full remaining effort, while an *empty* class may
        only be processed at its instantaneous inflow rate (which depends on
        every other station's allocation). Naive fixed-point iteration on
        this best response diverges when priority stations feed each other
        (the Rybko–Stolyar topology), so the allocation is computed exactly
        as a small LP: maximise priority-weighted throughput subject to
        station capacities and the no-draining-below-zero constraints
        ``mu_j u_j - sum_i P_ij mu_i u_i <= alpha_j`` for empty buffers.

        The solution depends on ``q`` only through its *empty pattern*, so
        results are cached on that pattern — one LP per regime, not per
        integration step.
        """
        empty = tuple(bool(q[j] <= 1e-12) for j in range(self.n_classes))
        cached = self._alloc_cache.get(empty)
        if cached is None:
            cached = self._solve_allocation(empty)
            self._alloc_cache[empty] = cached
        return cached

    @property
    def _alloc_cache(self) -> dict:
        cache = getattr(self, "_alloc_cache_store", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_alloc_cache_store", cache)
        return cache

    def _solve_allocation(self, empty: tuple) -> np.ndarray:
        from scipy.optimize import linprog

        n = self.n_classes
        n_st = int(self.station_of.max()) + 1 if n else 0
        # weights: within a station, priority position p gets weight B^-p,
        # with B large enough that one unit of a higher class always beats
        # everything below it.
        B = 16.0 * max(1.0, float(self.mu.max() / max(self.mu.min(), 1e-12)))
        w = np.zeros(n)
        for k in range(n_st):
            for pos, j in enumerate(self.priority[k] if k < len(self.priority) else ()):
                w[j] = B ** (-pos)
        c = -(w * self.mu)  # maximise weighted throughput
        A_ub, b_ub = [], []
        for k in range(n_st):
            row = np.zeros(n)
            for j in range(n):
                if self.station_of[j] == k:
                    row[j] = 1.0
            A_ub.append(row)
            b_ub.append(1.0)
        for group in self.virtual_stations:
            row = np.zeros(n)
            for j in group:
                row[j] = 1.0
            A_ub.append(row)
            b_ub.append(1.0)
        for j in range(n):
            if empty[j]:
                row = -self.routing[:, j] * self.mu
                row[j] += self.mu[j]
                A_ub.append(row)
                b_ub.append(self.alpha[j])
        res = linprog(
            c,
            A_ub=np.asarray(A_ub),
            b_ub=np.asarray(b_ub),
            bounds=[(0.0, 1.0)] * n,
            method="highs",
        )
        if not res.success:  # pragma: no cover - LP is always feasible (u=0)
            raise RuntimeError(f"fluid allocation LP failed: {res.message}")
        return np.asarray(res.x)


def fluid_trajectory(
    model: FluidModel, q0: Sequence[float], horizon: float, dt: float = 1e-3
) -> tuple[np.ndarray, np.ndarray]:
    """Euler-integrate the fluid dynamics; returns (times, levels) with
    levels of shape (n_steps + 1, n_classes)."""
    q = np.asarray(q0, dtype=float).copy()
    if np.any(q < 0):
        raise ValueError("buffer levels must be nonnegative")
    steps = int(np.ceil(horizon / dt))
    times = np.linspace(0.0, steps * dt, steps + 1)
    out = np.empty((steps + 1, model.n_classes))
    out[0] = q
    for t in range(steps):
        u = model.allocation(q)
        dq = model.alpha - model.mu * u + (model.mu * u) @ model.routing
        q = np.clip(q + dt * dq, 0.0, None)
        out[t + 1] = q
    return times, out


def fluid_drain_time(
    model: FluidModel, q0: Sequence[float], *, horizon: float = 200.0, dt: float = 1e-3,
    tol: float = 1e-6,
) -> float:
    """First time the total fluid mass reaches ~0 (inf if it never does
    within the horizon)."""
    times, levels = fluid_trajectory(model, q0, horizon, dt)
    total = levels.sum(axis=1)
    hit = np.nonzero(total <= tol)[0]
    return float(times[hit[0]]) if hit.size else float("inf")


def is_fluid_stable(
    model: FluidModel, *, horizon: float = 200.0, dt: float = 1e-3, from_levels: float = 1.0
) -> bool:
    """Fluid-stability check: from the uniform start ``from_levels * 1`` the
    model must drain to zero within the horizon *and stay* drained over the
    last 10% of it."""
    times, levels = fluid_trajectory(model, np.full(model.n_classes, from_levels), horizon, dt)
    total = levels.sum(axis=1)
    tail = total[int(0.9 * total.size):]
    return bool(np.all(tail <= 1e-4 * max(1.0, from_levels)))
