"""The stability problem for multiclass networks (Bramson [9], E13).

The survey highlights that for MQNs with multiple stations "in general it is
not known what conditions on model parameters ensure that a given policy is
stable". The canonical demonstration is the Rybko–Stolyar network: two
stations, two routes crossing them in opposite directions. Giving priority
at each station to the *exit* class creates a "virtual station": the two
exit classes can never be served simultaneously (serving one starves the
feeder of the other), so their combined load must stay below 1 — a stricter
condition than each physical station's load. When the virtual load exceeds
1, the priority policy is unstable even though both stations have nominal
load < 1; FIFO remains stable there.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.continuous import Exponential
from repro.queueing.network import ClassConfig, QueueingNetwork, StationConfig

__all__ = ["rybko_stolyar_network", "virtual_station_load"]


def rybko_stolyar_network(
    arrival_rate: float = 1.0,
    mean_first: float = 0.1,
    mean_second: float = 0.6,
    *,
    priority_to_exit: bool = True,
) -> QueueingNetwork:
    """Build the Rybko–Stolyar network.

    Classes: 0 = route A stage 1 (station 0), 1 = route A stage 2
    (station 1), 2 = route B stage 1 (station 1), 3 = route B stage 2
    (station 0). Exogenous arrivals feed classes 0 and 2 at ``arrival_rate``;
    stage-1 services have mean ``mean_first`` and stage-2 ``mean_second``.

    With ``priority_to_exit=True`` each station prioritises its stage-2
    (exit) class — the famously destabilising choice. Nominal station loads
    are ``arrival_rate * (mean_first + mean_second)`` each; the *virtual
    station* load is ``arrival_rate * 2 * mean_second``.
    """
    if arrival_rate <= 0 or mean_first <= 0 or mean_second <= 0:
        raise ValueError("rates and means must be positive")
    classes = [
        ClassConfig(station=0, service=Exponential.from_mean(mean_first), arrival_rate=arrival_rate, name="A1"),
        ClassConfig(station=1, service=Exponential.from_mean(mean_second), name="A2"),
        ClassConfig(station=1, service=Exponential.from_mean(mean_first), arrival_rate=arrival_rate, name="B1"),
        ClassConfig(station=0, service=Exponential.from_mean(mean_second), name="B2"),
    ]
    routing = np.zeros((4, 4))
    routing[0, 1] = 1.0  # A1 -> A2
    routing[2, 3] = 1.0  # B1 -> B2
    if priority_to_exit:
        st0 = StationConfig(discipline="priority", priority=(3, 0))
        st1 = StationConfig(discipline="priority", priority=(1, 2))
    else:
        st0 = StationConfig(discipline="fifo")
        st1 = StationConfig(discipline="fifo")
    return QueueingNetwork(classes, [st0, st1], routing)


def virtual_station_load(network: QueueingNetwork, classes: tuple[int, ...] = (1, 3)) -> float:
    """Combined load of a set of classes that can never be served in
    parallel (a *virtual station*). For the Rybko–Stolyar exit classes this
    exceeding 1 implies instability of the exit-priority policy."""
    lam = network.effective_rates()
    return float(sum(lam[j] * network.classes[j].service.mean for j in classes))
