"""Queueing scheduling control models (survey §3).

* :mod:`repro.queueing.mg1` — multiclass M/G/1 analytics: Pollaczek–
  Khinchine, Cobham priority waiting times, the cµ rule [15] and its exact
  optimal cost.
* :mod:`repro.queueing.klimov` — Klimov's model [24]: M/G/1 with Markovian
  feedback and the N-step index algorithm (a branching-bandit Gittins
  computation that reduces to cµ without feedback).
* :mod:`repro.queueing.network` — a multiclass queueing-network simulator
  (multiple stations, probabilistic routing, preemptive/nonpreemptive
  priority, FIFO), built on :mod:`repro.sim`.
* :mod:`repro.queueing.stability` — the stability problem [9]: the
  Rybko–Stolyar network and the virtual-station load criterion.
* :mod:`repro.queueing.fluid` — fluid approximations [11, 3]: trajectory
  integration, drain times, fluid-stability checks.
* :mod:`repro.queueing.heavy_traffic` — parallel-server scheduling
  (Glazebrook–Niño-Mora [22]): cµ heuristic on M/M/m vs the pooled-server
  lower bound as traffic intensifies.
* :mod:`repro.queueing.polling` — polling systems with switchover times
  (Levy–Sidi [25]): exhaustive / gated / limited service.
"""

from repro.queueing.mg1 import (
    cmu_indices,
    cmu_order,
    mg1_waiting_time,
    mm1_metrics,
    optimal_average_cost,
    order_average_cost,
)
from repro.queueing.klimov import (
    KlimovModel,
    effective_arrival_rates,
    klimov_indices,
    klimov_order,
)
from repro.queueing.network import (
    ClassConfig,
    NetworkResult,
    QueueingNetwork,
    StationConfig,
    simulate_network,
)
from repro.queueing.stability import (
    rybko_stolyar_network,
    virtual_station_load,
)
from repro.queueing.fluid import (
    FluidModel,
    fluid_drain_time,
    fluid_trajectory,
    is_fluid_stable,
)
from repro.queueing.heavy_traffic import (
    parallel_server_experiment,
    pooled_lower_bound,
)
from repro.queueing.polling import (
    PollingResult,
    PollingSystem,
    pseudo_conservation_rhs,
)

__all__ = [
    "mm1_metrics",
    "mg1_waiting_time",
    "cmu_indices",
    "cmu_order",
    "order_average_cost",
    "optimal_average_cost",
    "KlimovModel",
    "klimov_indices",
    "klimov_order",
    "effective_arrival_rates",
    "ClassConfig",
    "StationConfig",
    "QueueingNetwork",
    "NetworkResult",
    "simulate_network",
    "rybko_stolyar_network",
    "virtual_station_load",
    "FluidModel",
    "fluid_trajectory",
    "fluid_drain_time",
    "is_fluid_stable",
    "pooled_lower_bound",
    "parallel_server_experiment",
    "PollingSystem",
    "PollingResult",
    "pseudo_conservation_rhs",
]
