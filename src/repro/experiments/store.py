"""Content-addressed, resumable sample store for replication runs.

The replication contract makes cached samples safe to reuse: replication
``i`` of a scenario is a pure function of ``(scenario_id, params, root
seed)`` — the seed list is spawned in order from the root seed and each
replication consumes only its own seed's streams.  The store therefore
keys a per-replication sample matrix on exactly that triple; re-running
the same experiment with *more* replications (or a tighter precision
target) loads the cached prefix and simulates only the remainder, and the
result is bit-identical to a cold run.

Key scheme
----------
``sha256(canonical_json(payload))`` where the payload holds the store
schema version, the owning scenario pack's ``(name, version)`` (see
:func:`repro.experiments.registry.pack_info`), the scenario id, the
canonically serialised parameter mapping (sorted keys, numpy scalars
normalised — see :func:`repro.utils.serialization.canonical_json`) and
the root seed's entropy/spawn-key.  The simulation *backend* is deliberately absent: the
event and vectorized backends are bit-for-bit equivalent, so their
samples are interchangeable.  The confidence level and replication count
are also absent — they do not affect the samples, only statistics derived
from them.

Invalidation
------------
Changing any key component — including bumping the owning pack's
version, since a scenario's ``simulate`` may legitimately change between
pack releases — simply addresses a different entry; stale entries are
never silently reused.  Keying on the *pack* version rather than the
package version means bumping one pack invalidates exactly that pack's
entries and leaves every other pack's cache intact.  The full payload is
stored alongside the matrix and compared on load, so a hash collision or
a tampered file degrades to a cache miss, as does any unreadable or
corrupt file.

Each entry is one ``.npz`` file holding the ``(n, n_metrics)`` float
matrix, a boolean presence mask (metrics reported by only some
replications), and a JSON metadata blob.  Writes are atomic
(temp file + ``os.replace``) and monotone: an entry is only replaced by
one with strictly more replications.

Pluggable backends
------------------
:class:`SampleStore` is the on-disk reference implementation of the
:class:`StoreBackend` protocol — the five-method contract (``payload`` /
``key`` / ``load`` / ``length`` / ``save``) every layer above codes
against.  The runner accepts any backend object for ``cache_dir``, the
serving daemon (:mod:`repro.serve`) shares one backend across all of its
workers, and :class:`MemoryStore` is a process-local dict-backed backend
with identical monotone/prefix semantics — the conformance suite in
``tests/test_store.py`` is parametrized over backends so a future remote
implementation plugs into the same tests.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.utils.rng import as_seed_sequence
from repro.utils.serialization import canonical_json, jsonable

__all__ = [
    "MemoryStore",
    "SampleStore",
    "StoreBackend",
    "STORE_SCHEMA",
    "store_key",
    "store_payload",
]

STORE_SCHEMA = 2


def _seed_fingerprint(seed: int | np.random.SeedSequence) -> dict[str, Any]:
    """Canonical form of a root seed: the SeedSequence entropy/spawn-key."""
    ss = as_seed_sequence(seed)
    if ss.n_children_spawned:
        # spawn() mutates the sequence: its *future* children depend on how
        # many were already spawned, so runs keyed on entropy/spawn-key
        # alone would mix cached rows with rows from the wrong children.
        # Refuse loudly instead of serving silently wrong samples.
        raise ValueError(
            f"SeedSequence has already spawned {ss.n_children_spawned} "
            f"children; its replication streams depend on that mutable "
            f"state, so cached samples could not be reused consistently — "
            f"pass an integer seed or a fresh SeedSequence"
        )
    return {
        "entropy": jsonable(ss.entropy),
        "spawn_key": jsonable(list(ss.spawn_key)),
    }


def store_payload(
    scenario_id: str,
    params: Mapping[str, Any],
    seed: int | np.random.SeedSequence,
) -> dict[str, Any]:
    """The identity a cache entry is keyed on (and verified against).

    Shared by every :class:`StoreBackend` implementation so the content
    address is backend-independent: samples written through one backend
    are addressable through any other pointed at the same data.
    """
    if seed is None:
        raise ValueError(
            "seed=None draws fresh OS entropy and has no stable cache "
            "identity; pass an integer root seed to use the sample store"
        )
    from repro.experiments.registry import pack_info

    pack_name, pack_version = pack_info(scenario_id)
    return {
        "store_schema": STORE_SCHEMA,
        "pack": {"name": pack_name, "version": pack_version},
        "scenario_id": scenario_id,
        "params": jsonable(params),
        "seed": _seed_fingerprint(seed),
    }


def store_key(
    scenario_id: str,
    params: Mapping[str, Any],
    seed: int | np.random.SeedSequence,
) -> str:
    """Content address (hex digest) for one experiment identity."""
    text = canonical_json(store_payload(scenario_id, params, seed))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


@runtime_checkable
class StoreBackend(Protocol):
    """The contract a sample-store backend implements.

    Implementations key per-replication sample rows on the canonical
    ``(pack@version, scenario_id, params, root seed)`` identity of
    :func:`store_payload` and obey three semantic rules the layers above
    rely on:

    * **prefix** — ``load`` returns rows in replication order, so a
      caller needing ``n`` rows uses the first ``n`` and simulates only
      the remainder;
    * **monotone** — ``save`` never shrinks an entry: an existing entry
      with at least as many rows is kept;
    * **degrade to miss** — an unreadable, corrupt, or
      identity-mismatched entry loads as ``None`` (and counts 0 in
      ``length``), never as wrong samples.

    :class:`SampleStore` (on-disk ``.npz``, the default) and
    :class:`MemoryStore` (process-local) both satisfy the protocol; the
    runner's ``cache_dir`` and the serving daemon accept any
    implementation.
    """

    def payload(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> dict[str, Any]:
        """The identity an entry is keyed on (and verified against)."""
        ...

    def key(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> str:
        """Content address (hex digest) for one experiment identity."""
        ...

    def load(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> list[dict[str, float]] | None:
        """All cached replication rows for this identity, or ``None``."""
        ...

    def length(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> int:
        """Cached replication count for this identity (0 when absent)."""
        ...

    def save(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
        rows: Sequence[Mapping[str, float]],
    ) -> bool:
        """Persist the full row list; returns whether a write happened."""
        ...


class SampleStore:
    """A directory of per-replication sample matrices, content-addressed
    by ``(scenario_id, canonical params, root seed)``.

    The directory is created lazily on the first write; loads from a
    missing directory are plain cache misses.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    # -- keying ----------------------------------------------------------

    def payload(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> dict[str, Any]:
        """The identity a cache entry is keyed on (and verified against)."""
        return store_payload(scenario_id, params, seed)

    def key(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> str:
        """Content address (hex digest) for one experiment identity."""
        return store_key(scenario_id, params, seed)

    def path(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> Path:
        """Filesystem location of the entry for one experiment identity."""
        return self.root / f"{self.key(scenario_id, params, seed)}.npz"

    # -- IO --------------------------------------------------------------

    def load(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> list[dict[str, float]] | None:
        """All cached replication rows for this identity, or ``None``.

        Rows come back in replication order; callers needing ``n``
        replications use the first ``n`` (the prefix property) and
        simulate any remainder.  Unreadable, corrupt, or
        payload-mismatched files are treated as misses.
        """
        path = self.path(scenario_id, params, seed)
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"][()]))
                matrix = np.asarray(data["matrix"], dtype=float)
                mask = np.asarray(data["mask"], dtype=bool)
        except Exception:
            # missing file, truncated zip, bad JSON, wrong dtypes … —
            # every unreadable entry is just a cache miss
            return None
        if meta.get("payload") != self.payload(scenario_id, params, seed):
            return None
        names = meta.get("names", [])
        if matrix.shape != mask.shape or matrix.ndim != 2 or matrix.shape[1] != len(
            names
        ):
            return None
        return [
            {
                name: float(matrix[i, j])
                for j, name in enumerate(names)
                if mask[i, j]
            }
            for i in range(matrix.shape[0])
        ]

    def length(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> int:
        """Cached replication count for this identity (0 when absent).

        Reads only the entry's metadata member — no matrix decode — so
        sweep tooling can cheaply report how much of a parameter grid is
        already served by the store."""
        payload = self.payload(scenario_id, params, seed)
        return self._entry_length(self.path(scenario_id, params, seed), payload)

    @staticmethod
    def _entry_length(path: Path, payload: Mapping[str, Any]) -> int:
        """Replication count of the entry at ``path``, reading only the
        metadata member (no matrix decode or row building); 0 for
        missing/corrupt/payload-mismatched entries (all overwritable)."""
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"][()]))
        except Exception:
            return 0
        if meta.get("payload") != payload:
            return 0
        return int(meta.get("n", 0))

    def save(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
        rows: Sequence[Mapping[str, float]],
    ) -> bool:
        """Persist ``rows`` (the *full* replication list, in order).

        Returns whether a write happened: an existing entry with at least
        as many replications is kept (writes are monotone — the store
        only ever grows an identity's prefix).
        """
        if not rows:
            return False
        payload = self.payload(scenario_id, params, seed)
        if self._entry_length(self.path(scenario_id, params, seed), payload) >= len(
            rows
        ):
            return False
        names = sorted({k for row in rows for k in row})
        matrix = np.full((len(rows), len(names)), np.nan)
        mask = np.zeros((len(rows), len(names)), dtype=bool)
        for i, row in enumerate(rows):
            for j, name in enumerate(names):
                if name in row:
                    matrix[i, j] = row[name]
                    mask[i, j] = True
        meta = {
            "payload": payload,
            "names": names,
            "n": len(rows),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".npz"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    matrix=matrix,
                    mask=mask,
                    meta=np.array(json.dumps(meta)),
                )
            os.replace(tmp, self.path(scenario_id, params, seed))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True


class MemoryStore:
    """A process-local, dict-backed :class:`StoreBackend`.

    Same identity scheme and monotone/prefix semantics as
    :class:`SampleStore`, with entries held in memory: the natural
    backend for tests, for short-lived daemons that should not touch
    disk, and as the protocol-conformance counterpart proving the layers
    above never depend on ``SampleStore`` specifics.  Rows are copied on
    both save and load, so callers can never mutate a cached entry in
    place.
    """

    def __init__(self) -> None:
        self._entries: dict[str, tuple[dict[str, Any], list[dict[str, float]]]] = {}

    def payload(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> dict[str, Any]:
        """The identity a cache entry is keyed on (and verified against)."""
        return store_payload(scenario_id, params, seed)

    def key(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> str:
        """Content address (hex digest) for one experiment identity."""
        return store_key(scenario_id, params, seed)

    def load(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> list[dict[str, float]] | None:
        """All cached replication rows for this identity, or ``None``."""
        entry = self._entries.get(self.key(scenario_id, params, seed))
        if entry is None:
            return None
        payload, rows = entry
        if payload != self.payload(scenario_id, params, seed):
            return None
        return [dict(row) for row in rows]

    def length(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
    ) -> int:
        """Cached replication count for this identity (0 when absent)."""
        entry = self._entries.get(self.key(scenario_id, params, seed))
        if entry is None or entry[0] != self.payload(scenario_id, params, seed):
            return 0
        return len(entry[1])

    def save(
        self,
        scenario_id: str,
        params: Mapping[str, Any],
        seed: int | np.random.SeedSequence,
        rows: Sequence[Mapping[str, float]],
    ) -> bool:
        """Persist ``rows`` (monotone: a shorter list never replaces a
        longer cached entry); returns whether a write happened."""
        if not rows:
            return False
        payload = self.payload(scenario_id, params, seed)
        if self.length(scenario_id, params, seed) >= len(rows):
            return False
        self._entries[self.key(scenario_id, params, seed)] = (
            payload,
            [{k: float(v) for k, v in row.items()} for row in rows],
        )
        return True
