"""Declarative registry of reproduction scenarios.

A :class:`Scenario` is one paper claim packaged as a runnable experiment:
a per-replication ``simulate`` function, default parameters, the claim text
it validates, and *shape checks* — named predicates over the measured
metrics that encode "who wins, by what order" rather than absolute numbers.

Scenarios register themselves at import time via the :func:`scenario`
decorator, mirroring the endpoint-registry idiom: everything downstream
(the replication runner, the CLI, the report generator, the benchmarks)
discovers experiments by id through :func:`get_scenario` /
:func:`list_scenarios` instead of hard-coding workloads.

The per-replication contract is::

    def simulate(ss: np.random.SeedSequence, params: Mapping[str, Any]) -> dict[str, float]

``ss`` is a dedicated child seed sequence for this replication; the
scenario derives whatever streams it needs from it (independent streams
via ``spawn``, or common-random-number streams via
:func:`repro.utils.rng.crn_generators` when comparing policies on the same
draws).  The return value maps metric names to floats; boolean facts are
encoded as 0.0/1.0 so every metric aggregates uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.utils.rng import as_seed_sequence

__all__ = [
    "Scenario",
    "scenario",
    "register",
    "is_registered",
    "get_scenario",
    "list_scenarios",
    "scenario_ids",
]

SimulateFn = Callable[[np.random.SeedSequence, Mapping[str, Any]], "dict[str, float]"]
CheckFn = Callable[[Mapping[str, float]], bool]

_REGISTRY: dict[str, "Scenario"] = {}


@dataclass(frozen=True)
class Scenario:
    """One registered experiment: a paper claim plus the code measuring it.

    Attributes
    ----------
    scenario_id:
        Canonical id (``"E1"`` … ``"E19"`` for the survey claims).
    title:
        One-line human title shown in listings and report headings.
    claim:
        The paper claim this scenario reproduces (verbatim-ish, with the
        survey's reference numbers).
    verdict:
        The expected outcome summary written into generated reports.
    simulate:
        Per-replication measurement function (see module docstring).
    defaults:
        Default parameter values; CLI/benchmark overrides are merged on top.
    checks:
        Named shape predicates over a metrics mapping.  They are evaluated
        on aggregated means by the runner and may equally be applied to a
        single replication's metrics by tests/benchmarks.
    tags:
        Free-form labels (subsystem names, ``"exact"`` vs ``"simulation"``)
        used for subset selection.
    """

    scenario_id: str
    title: str
    claim: str
    verdict: str
    simulate: SimulateFn
    defaults: Mapping[str, Any] = field(default_factory=dict)
    checks: Mapping[str, CheckFn] = field(default_factory=dict)
    tags: tuple[str, ...] = ()

    def params(self, overrides: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Defaults merged with ``overrides``; unknown keys are rejected."""
        merged = dict(self.defaults)
        for key, value in (overrides or {}).items():
            if key not in merged:
                raise KeyError(
                    f"{self.scenario_id} has no parameter {key!r}; "
                    f"known: {sorted(merged)}"
                )
            merged[key] = value
        return merged

    def run_once(
        self,
        seed: int | np.random.SeedSequence | None = None,
        overrides: Mapping[str, Any] | None = None,
    ) -> dict[str, float]:
        """Run a single replication with the given seed and overrides."""
        return self.simulate(as_seed_sequence(seed), self.params(overrides))

    def evaluate_checks(self, metrics: Mapping[str, float]) -> dict[str, bool]:
        """Evaluate every shape check against a metrics mapping.

        A check that references a metric absent from ``metrics`` (e.g.
        because parameter overrides changed which metrics the scenario
        emits) counts as failed rather than raising."""
        out = {}
        for name, fn in self.checks.items():
            try:
                out[name] = bool(fn(metrics))
            except KeyError:
                out[name] = False
        return out


def register(sc: Scenario) -> Scenario:
    """Add a scenario to the registry; duplicate ids are an error."""
    key = sc.scenario_id.upper()
    if key in _REGISTRY:
        raise ValueError(f"scenario {sc.scenario_id!r} already registered")
    _REGISTRY[key] = sc
    return sc


def scenario(
    scenario_id: str,
    *,
    title: str,
    claim: str,
    verdict: str,
    defaults: Mapping[str, Any] | None = None,
    checks: Mapping[str, CheckFn] | None = None,
    tags: tuple[str, ...] = (),
) -> Callable[[SimulateFn], SimulateFn]:
    """Decorator registering a simulate function as a :class:`Scenario`.

    Returns the function unchanged so it stays a plain module-level callable
    (and therefore picklable for the multiprocess runner).
    """

    def decorate(fn: SimulateFn) -> SimulateFn:
        register(
            Scenario(
                scenario_id=scenario_id,
                title=title,
                claim=claim,
                verdict=verdict,
                simulate=fn,
                defaults=dict(defaults or {}),
                checks=dict(checks or {}),
                tags=tuple(tags),
            )
        )
        return fn

    return decorate


_BUILTINS_LOADED = False


def _ensure_loaded() -> None:
    # The built-in scenarios live in repro.experiments.scenarios and
    # register on import; defer that import so registry <-> scenarios does
    # not cycle and ad-hoc Scenario objects can be registered first.
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from repro.experiments import scenarios  # noqa: F401


def is_registered(sc: Scenario) -> bool:
    """Whether ``sc`` is the instance the registry holds under its id.

    The parallel runner uses this to decide whether a worker process can
    re-resolve the scenario by id (registered) or must receive the
    ``simulate`` callable directly (ad-hoc object)."""
    _ensure_loaded()
    return _REGISTRY.get(sc.scenario_id.upper()) is sc


def get_scenario(scenario_id: str) -> Scenario:
    """Look up a scenario by id (case-insensitive)."""
    _ensure_loaded()
    key = scenario_id.upper()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {scenario_id!r}; available: {scenario_ids()}"
        )
    return _REGISTRY[key]


def _sort_key(sid: str) -> tuple:
    # E2 before E10: split the id into its alpha prefix and numeric suffix.
    head = sid.rstrip("0123456789")
    tail = sid[len(head):]
    return (head, int(tail) if tail else -1)


def scenario_ids() -> list[str]:
    """All registered ids in natural order (E1, E2, …, E10, …)."""
    _ensure_loaded()
    return sorted(_REGISTRY, key=_sort_key)


def list_scenarios(tags: tuple[str, ...] | None = None) -> list[Scenario]:
    """All registered scenarios, optionally filtered to those bearing
    every tag in ``tags``."""
    _ensure_loaded()
    out = [_REGISTRY[k] for k in scenario_ids()]
    if tags:
        wanted = set(tags)
        out = [sc for sc in out if wanted <= set(sc.tags)]
    return out
