"""Declarative registry of reproduction scenarios.

A :class:`Scenario` is one paper claim packaged as a runnable experiment:
a per-replication ``simulate`` function, default parameters, the claim text
it validates, and *shape checks* — named predicates over the measured
metrics that encode "who wins, by what order" rather than absolute numbers.

Scenarios reach the registry through *scenario packs*
(:mod:`repro.experiments.packs`): each built-in family pack — and any
third-party pack installed under the ``repro.scenario_packs`` entry-point
group — declares its scenarios (and optional vectorized kernels) in a
:class:`~repro.experiments.packs.ScenarioPack` manifest that is registered
on discovery.  Ad-hoc scenarios may also be registered directly via
:func:`register` or the :func:`scenario` decorator.  Everything downstream
(the replication runner, the CLIs, the report generator, the benchmarks)
discovers experiments by id through :func:`get_scenario` /
:func:`list_scenarios` instead of hard-coding workloads.

The per-replication contract is::

    def simulate(ss: np.random.SeedSequence, params: Mapping[str, Any]) -> dict[str, float]

``ss`` is a dedicated child seed sequence for this replication; the
scenario derives whatever streams it needs from it (independent streams
via ``spawn``, or common-random-number streams via
:func:`repro.utils.rng.crn_generators` when comparing policies on the same
draws).  The return value maps metric names to floats; boolean facts are
encoded as 0.0/1.0 so every metric aggregates uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.utils.rng import as_seed_sequence
from repro.utils.schema import schema_errors

__all__ = [
    "Scenario",
    "CheckOutcome",
    "ParamValidationError",
    "scenario",
    "register",
    "is_registered",
    "get_scenario",
    "list_scenarios",
    "scenario_ids",
    "pack_info",
]

SimulateFn = Callable[[np.random.SeedSequence, Mapping[str, Any]], "dict[str, float]"]
CheckFn = Callable[[Mapping[str, float]], bool]

_REGISTRY: dict[str, "Scenario"] = {}
# key -> human-readable owner ("module 'x'" / "pack 'bandits' (builtin)"),
# named in genuine-collision errors so the loser knows who holds the id
_OWNERS: dict[str, str] = {}
# key -> (pack name, pack version) for scenarios registered through a pack
_PACK_OF: dict[str, tuple[str, str]] = {}


class ParamValidationError(ValueError):
    """Parameter values that violate a scenario's declared JSON schema.

    A subclass of :class:`ValueError` so existing ``except ValueError``
    funnels (e.g. the sweep CLI's) keep converting it to a clean exit-2
    user error.
    """


@dataclass(frozen=True)
class CheckOutcome:
    """The result of evaluating one shape check: pass/fail plus the
    exception summary when the check itself raised."""

    passed: bool
    error: str | None = None


def _fingerprint(fn: Callable) -> tuple:
    """Identity of a simulate callable that survives module re-imports.

    ``importlib.reload`` (and importing the same pack file under two
    module names) creates a *new* function object from the *same* source
    location, so object identity is the wrong equality; the qualname plus
    code location is stable across those re-imports while still telling
    genuinely different functions apart."""
    code = getattr(fn, "__code__", None)
    if code is None:
        return (id(fn),)
    return (fn.__qualname__, code.co_filename, code.co_firstlineno)


@dataclass(frozen=True)
class Scenario:
    """One registered experiment: a paper claim plus the code measuring it.

    Attributes
    ----------
    scenario_id:
        Canonical id (``"E1"`` … ``"E19"`` for the survey claims).
    title:
        One-line human title shown in listings and report headings.
    claim:
        The paper claim this scenario reproduces (verbatim-ish, with the
        survey's reference numbers).
    verdict:
        The expected outcome summary written into generated reports.
    simulate:
        Per-replication measurement function (see module docstring).
    defaults:
        Default parameter values; CLI/benchmark overrides are merged on top.
    checks:
        Named shape predicates over a metrics mapping.  They are evaluated
        on aggregated means by the runner and may equally be applied to a
        single replication's metrics by tests/benchmarks.
    tags:
        Free-form labels (subsystem names, ``"exact"`` vs ``"simulation"``)
        used for subset selection.
    schema:
        Optional JSON-schema fragment (see :mod:`repro.utils.schema`) for
        the merged parameter mapping.  When present, :meth:`params`
        validates every merged mapping against it and registration
        validates the declared defaults.
    """

    scenario_id: str
    title: str
    claim: str
    verdict: str
    simulate: SimulateFn
    defaults: Mapping[str, Any] = field(default_factory=dict)
    checks: Mapping[str, CheckFn] = field(default_factory=dict)
    tags: tuple[str, ...] = ()
    schema: Mapping[str, Any] | None = None

    def params(self, overrides: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Defaults merged with ``overrides``; unknown keys are rejected
        and, when the scenario declares a schema, the merged mapping is
        validated against it (:class:`ParamValidationError` on failure)."""
        merged = dict(self.defaults)
        for key, value in (overrides or {}).items():
            if key not in merged:
                raise KeyError(
                    f"{self.scenario_id} has no parameter {key!r}; "
                    f"known: {sorted(merged)}"
                )
            merged[key] = value
        self.validate_params(merged)
        return merged

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Validate a full parameter mapping against the declared schema.

        A scenario without a schema accepts anything (the unknown-key
        check in :meth:`params` still applies); with one, every violation
        is reported in a single :class:`ParamValidationError` naming the
        scenario and the offending parameter path."""
        if self.schema is None:
            return
        errors = schema_errors(params, self.schema, path="")
        if errors:
            raise ParamValidationError(
                f"invalid parameters for scenario {self.scenario_id}: "
                + "; ".join(errors)
                + ". Fix the value(s) or drop the override(s) to use the "
                f"declared defaults {dict(self.defaults)!r}."
            )

    def run_once(
        self,
        seed: int | np.random.SeedSequence | None = None,
        overrides: Mapping[str, Any] | None = None,
    ) -> dict[str, float]:
        """Run a single replication with the given seed and overrides."""
        return self.simulate(as_seed_sequence(seed), self.params(overrides))

    def check_outcomes(
        self, metrics: Mapping[str, float]
    ) -> dict[str, CheckOutcome]:
        """Evaluate every shape check, capturing per-check exceptions.

        A check that raises *any* exception — a ``KeyError`` for a metric
        absent from ``metrics``, but equally a ``ZeroDivisionError`` or
        ``TypeError`` on degenerate metric values — counts as failed with
        the exception summarised in :attr:`CheckOutcome.error`, instead of
        aborting the whole (possibly multi-scenario) run."""
        out = {}
        for name, fn in self.checks.items():
            try:
                out[name] = CheckOutcome(passed=bool(fn(metrics)))
            except Exception as exc:
                out[name] = CheckOutcome(
                    passed=False, error=f"{type(exc).__name__}: {exc}"
                )
        return out

    def evaluate_checks(self, metrics: Mapping[str, float]) -> dict[str, bool]:
        """Evaluate every shape check against a metrics mapping.

        Boolean view of :meth:`check_outcomes`: a check that raises (a
        missing metric, a division by zero on a degenerate aggregate, …)
        counts as failed rather than propagating."""
        return {
            name: outcome.passed
            for name, outcome in self.check_outcomes(metrics).items()
        }


def register(sc: Scenario, *, owner: str | None = None) -> Scenario:
    """Add a scenario to the registry.

    Re-registering an *identical* ``(id, simulate)`` pair — the same
    function object, or the same function re-created by a module re-import
    — is an idempotent no-op returning the already-registered scenario.
    A genuine collision (same id, different simulate function) raises,
    naming the module or pack that owns the existing entry.  ``owner`` is
    the human-readable label recorded for such errors; it defaults to the
    simulate function's module.
    """
    key = sc.scenario_id.upper()
    existing = _REGISTRY.get(key)
    if existing is not None:
        if _fingerprint(existing.simulate) == _fingerprint(sc.simulate):
            return existing
        raise ValueError(
            f"scenario {sc.scenario_id!r} already registered by "
            f"{_OWNERS.get(key, 'an unknown owner')}; pick a different "
            f"scenario id for the new registration"
        )
    if sc.schema is not None:
        errors = schema_errors(sc.defaults, sc.schema, path="")
        if errors:
            raise ValueError(
                f"scenario {sc.scenario_id!r} declares defaults that violate "
                f"its own param schema: " + "; ".join(errors)
            )
    _REGISTRY[key] = sc
    _OWNERS[key] = owner or f"module {getattr(sc.simulate, '__module__', '?')!r}"
    return sc


def _set_pack_info(scenario_id: str, name: str, version: str) -> None:
    # recorded by ScenarioPack registration; read back by pack_info()
    _PACK_OF[scenario_id.upper()] = (str(name), str(version))


def pack_info(scenario_id: str) -> tuple[str, str]:
    """The ``(pack name, pack version)`` provenance of a scenario.

    Scenarios registered outside any pack (ad-hoc :func:`register` /
    :func:`scenario` uses) report ``("unpackaged", <package version>)`` so
    cache keys built on provenance still invalidate on package upgrades.
    """
    _ensure_loaded()
    key = scenario_id.upper()
    if key in _PACK_OF:
        return _PACK_OF[key]
    import repro

    return ("unpackaged", repro.__version__)


def scenario(
    scenario_id: str,
    *,
    title: str,
    claim: str,
    verdict: str,
    defaults: Mapping[str, Any] | None = None,
    checks: Mapping[str, CheckFn] | None = None,
    tags: tuple[str, ...] = (),
    schema: Mapping[str, Any] | None = None,
) -> Callable[[SimulateFn], SimulateFn]:
    """Decorator registering a simulate function as a :class:`Scenario`.

    Returns the function unchanged so it stays a plain module-level callable
    (and therefore picklable for the multiprocess runner).
    """

    def decorate(fn: SimulateFn) -> SimulateFn:
        register(
            Scenario(
                scenario_id=scenario_id,
                title=title,
                claim=claim,
                verdict=verdict,
                simulate=fn,
                defaults=dict(defaults or {}),
                checks=dict(checks or {}),
                tags=tuple(tags),
                schema=dict(schema) if schema is not None else None,
            )
        )
        return fn

    return decorate


_BUILTINS_LOADED = False


def _ensure_loaded() -> None:
    # The built-in scenarios live in the family packs under
    # repro.experiments.packs (plus any entry-point packs); defer their
    # discovery so registry <-> packs does not cycle and ad-hoc Scenario
    # objects can be registered first.
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from repro.experiments.packs import load_packs

        load_packs()


def is_registered(sc: Scenario) -> bool:
    """Whether ``sc`` is the instance the registry holds under its id.

    The parallel runner uses this to decide whether a worker process can
    re-resolve the scenario by id (registered) or must receive the
    ``simulate`` callable directly (ad-hoc object)."""
    _ensure_loaded()
    return _REGISTRY.get(sc.scenario_id.upper()) is sc


def get_scenario(scenario_id: str) -> Scenario:
    """Look up a scenario by id (case-insensitive)."""
    _ensure_loaded()
    key = scenario_id.upper()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {scenario_id!r}; available: {scenario_ids()}"
        )
    return _REGISTRY[key]


def _sort_key(sid: str) -> tuple:
    # E2 before E10: split the id into its alpha prefix and numeric suffix.
    head = sid.rstrip("0123456789")
    tail = sid[len(head):]
    return (head, int(tail) if tail else -1)


def scenario_ids() -> list[str]:
    """All registered ids in natural order (E1, E2, …, E10, …)."""
    _ensure_loaded()
    return sorted(_REGISTRY, key=_sort_key)


def list_scenarios(tags: tuple[str, ...] | None = None) -> list[Scenario]:
    """All registered scenarios, optionally filtered to those bearing
    every tag in ``tags``."""
    _ensure_loaded()
    out = [_REGISTRY[k] for k in scenario_ids()]
    if tags:
        wanted = set(tags)
        out = [sc for sc in out if wanted <= set(sc.tags)]
    return out
