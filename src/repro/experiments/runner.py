"""Batched replication runner for registered scenarios.

Executes a scenario's per-replication ``simulate`` function over many
independent seed streams — serially or fanned out across worker processes
— and aggregates every metric into a point estimate with a Student-t
confidence interval.

Determinism contract: the replication seeds are spawned *once* from the
root seed and only then partitioned into chunks, and results are
reassembled in replication order.  The sample matrix — and therefore every
point estimate and interval — is bit-identical for any worker count.

Workers receive ``(scenario_id, params, seeds)`` rather than the scenario
object itself: the id is looked up in the registry inside the worker, so
only plain data crosses the process boundary and scenarios may freely use
lambdas in their check tables.

Backends: replications run through the scenario's event-driven
``simulate`` function or, for scenarios with a registered vectorized
kernel, through the batched kernel (see
:mod:`repro.experiments.backends`).  The two backends are bit-for-bit
equivalent per replication, so every statistic here is identical for any
``backend`` choice — and, as before, for any worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np
from scipy import stats as _sps

from repro.experiments.backends import (
    BACKENDS,
    MissingKernelError,
    resolve_backend,
    simulate_scenario_batch,
)
from repro.experiments.registry import Scenario, get_scenario, is_registered
from repro.sim.replication import map_seed_chunks
from repro.utils.rng import spawn_seed_sequences

__all__ = ["MetricSummary", "ScenarioResult", "run_scenario", "run_scenarios"]


@dataclass(frozen=True)
class MetricSummary:
    """Aggregated statistics for one named metric across replications."""

    name: str
    mean: float
    half_width: float
    std: float
    minimum: float
    maximum: float
    level: float
    n: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON serialisation."""
        return {
            "name": self.name,
            "mean": self.mean,
            "half_width": self.half_width,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "level": self.level,
            "n": self.n,
        }


@dataclass(frozen=True)
class ScenarioResult:
    """Everything measured for one scenario run."""

    scenario_id: str
    title: str
    claim: str
    verdict: str
    n_replications: int
    seed: int | None
    params: dict[str, Any]
    metrics: dict[str, MetricSummary]
    checks: dict[str, bool]
    elapsed_seconds: float
    samples: dict[str, list[float]] = field(default_factory=dict, repr=False)
    backend: str = "event"  # the backend that actually ran (never "auto")

    @property
    def all_checks_pass(self) -> bool:
        """Whether every registered shape check holds for the aggregated
        metrics."""
        return all(self.checks.values())

    def means(self) -> dict[str, float]:
        """Metric name → point estimate."""
        return {name: s.mean for name, s in self.metrics.items()}

    def to_dict(self, *, include_samples: bool = False) -> dict[str, Any]:
        """Plain-dict form for JSON serialisation."""
        out: dict[str, Any] = {
            "scenario_id": self.scenario_id,
            "title": self.title,
            "claim": self.claim,
            "verdict": self.verdict,
            "n_replications": self.n_replications,
            "seed": self.seed,
            "params": _jsonable(self.params),
            "metrics": {k: v.to_dict() for k, v in self.metrics.items()},
            "checks": dict(self.checks),
            "all_checks_pass": self.all_checks_pass,
            "elapsed_seconds": self.elapsed_seconds,
            "backend": self.backend,
        }
        if include_samples:
            out["samples"] = {k: list(v) for k, v in self.samples.items()}
        return out


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays and tuples to JSON types."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _simulate_chunk(
    payload: tuple,
    seeds: Sequence[np.random.SeedSequence],
) -> list[dict[str, float]]:
    """Worker body: run a chunk of replications for one scenario.

    ``payload`` is ``(scenario_id, None, params, backend)`` for registered
    scenarios — the id is re-resolved inside the worker, so only plain
    data crosses the process boundary and the registry is re-populated by
    the import inside :func:`get_scenario` even under the ``spawn`` start
    method — or ``(scenario_id, simulate_fn, params, backend)`` for ad-hoc
    :class:`Scenario` objects that exist only in the calling process
    (their ``simulate`` must then itself be picklable; ad-hoc scenarios
    always run on the event backend).  ``backend`` is already resolved to
    ``"event"`` or ``"vectorized"``.  A vectorized chunk is one kernel
    call over the chunk's seeds — each replication still consumes only its
    own seed's streams, so chunking cannot change results.
    """
    scenario_id, simulate, params, backend = payload
    if backend == "vectorized" and simulate is None:
        return simulate_scenario_batch(scenario_id, seeds, params)
    if simulate is None:
        simulate = get_scenario(scenario_id).simulate
    return [simulate(ss, params) for ss in seeds]


def _aggregate(
    rows: list[dict[str, float]], level: float
) -> tuple[dict[str, MetricSummary], dict[str, list[float]]]:
    """Vectorised aggregation: one (n_reps, n_metrics) matrix, statistics
    computed per column in single numpy passes."""
    names = sorted({k for row in rows for k in row})
    matrix = np.full((len(rows), len(names)), np.nan)
    for i, row in enumerate(rows):
        for j, name in enumerate(names):
            if name in row:
                matrix[i, j] = row[name]
    n = matrix.shape[0]
    means = np.nanmean(matrix, axis=0)
    mins = np.nanmin(matrix, axis=0)
    maxs = np.nanmax(matrix, axis=0)
    if n > 1:
        stds = np.nanstd(matrix, axis=0, ddof=1)
        t = float(_sps.t.ppf(0.5 + level / 2, df=n - 1))
        half = t * stds / np.sqrt(n)
    else:
        stds = np.zeros(len(names))
        half = np.full(len(names), np.inf)
    metrics = {
        name: MetricSummary(
            name=name,
            mean=float(means[j]),
            half_width=float(half[j]),
            std=float(stds[j]),
            minimum=float(mins[j]),
            maximum=float(maxs[j]),
            level=level,
            n=n,
        )
        for j, name in enumerate(names)
    }
    samples = {name: matrix[:, j].tolist() for j, name in enumerate(names)}
    return metrics, samples


def run_scenario(
    scenario: Scenario | str,
    *,
    replications: int = 10,
    seed: int | None = 0,
    workers: int | None = 1,
    params: Mapping[str, Any] | None = None,
    level: float = 0.95,
    backend: str = "auto",
) -> ScenarioResult:
    """Run one scenario for ``replications`` independent replications.

    Parameters
    ----------
    scenario:
        A :class:`~repro.experiments.registry.Scenario` or its id.
    replications:
        Number of independent replications.
    seed:
        Root seed; replication ``i`` always sees the same stream for a
        given root seed, independent of ``workers``.
    workers:
        Process count for the fan-out; ``None``/0 means all cores, 1 runs
        serially in-process.
    params:
        Overrides merged over the scenario's declared defaults.
    level:
        Confidence level for the per-metric intervals.
    backend:
        ``"event"``, ``"vectorized"`` or ``"auto"``.  Vectorized kernels
        are bit-for-bit equivalent to the event path (enforced by the
        cross-backend test harness), so ``"auto"`` — use the kernel when
        one exists — never changes results, only wall-clock time.
        Requesting ``"vectorized"`` for a scenario without a kernel (or
        for an ad-hoc, unregistered scenario object) raises
        :class:`~repro.experiments.backends.MissingKernelError` naming
        the scenario instead of silently running the event engine.
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
    merged = sc.params(params)
    seeds = spawn_seed_sequences(seed, replications)
    registered = is_registered(sc)
    if registered:
        resolved = resolve_backend(sc.scenario_id, backend)
    else:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "vectorized":
            raise MissingKernelError(
                f"ad-hoc scenario {sc.scenario_id!r} is not registered and "
                f"has no vectorized kernel; request backend='event' or "
                f"'auto' to run it on the event engine."
            )
        resolved = "event"
    # Registered scenarios ship only their id (workers re-resolve it, which
    # survives the spawn start method); ad-hoc Scenario objects ship their
    # simulate callable directly.
    payload = (sc.scenario_id, None if registered else sc.simulate, merged, resolved)

    start = time.perf_counter()
    rows = map_seed_chunks(_simulate_chunk, payload, seeds, workers=workers)
    elapsed = time.perf_counter() - start

    metrics, samples = _aggregate(rows, level)
    checks = sc.evaluate_checks({k: v.mean for k, v in metrics.items()})
    return ScenarioResult(
        scenario_id=sc.scenario_id,
        title=sc.title,
        claim=sc.claim,
        verdict=sc.verdict,
        n_replications=replications,
        seed=seed,
        params=dict(merged),
        metrics=metrics,
        checks=checks,
        elapsed_seconds=elapsed,
        samples=samples,
        backend=resolved,
    )


def run_scenarios(
    scenario_ids: Sequence[str | Scenario],
    *,
    replications: int = 10,
    seed: int | None = 0,
    workers: int | None = 1,
    params: Mapping[str, Any] | None = None,
    level: float = 0.95,
    backend: str = "auto",
) -> list[ScenarioResult]:
    """Run several scenarios in sequence with a shared configuration.

    Each scenario derives its replication seeds from the same root seed;
    parameter overrides in ``params`` are applied only where a scenario
    declares the parameter (unknown keys for a given scenario are skipped,
    so a shared ``horizon`` override can target just the simulation-backed
    scenarios).
    """
    results = []
    for item in scenario_ids:
        sc = get_scenario(item) if isinstance(item, str) else item
        overrides = {
            k: v for k, v in (params or {}).items() if k in sc.defaults
        }
        results.append(
            run_scenario(
                sc,
                replications=replications,
                seed=seed,
                workers=workers,
                params=overrides,
                level=level,
                backend=backend,
            )
        )
    return results
