"""Batched replication runner for registered scenarios.

Executes a scenario's per-replication ``simulate`` function over many
independent seed streams — serially or fanned out across worker processes
— and aggregates every metric into a point estimate with a Student-t
confidence interval.

Determinism contract: the replication seeds are spawned *once* from the
root seed and only then partitioned into chunks, and results are
reassembled in replication order.  The sample matrix — and therefore every
point estimate and interval — is bit-identical for any worker count.

Workers receive ``(scenario_id, params, seeds)`` rather than the scenario
object itself: the id is looked up in the registry inside the worker, so
only plain data crosses the process boundary and scenarios may freely use
lambdas in their check tables.

Backends: replications run through the scenario's event-driven
``simulate`` function or, for scenarios with a registered vectorized
kernel, through the batched kernel (see
:mod:`repro.experiments.backends`).  The two backends are bit-for-bit
equivalent per replication, so every statistic here is identical for any
``backend`` choice — and, as before, for any worker count.

Two optional layers sit on top of the fixed-count loop:

* ``target_precision`` switches to the adaptive sequential controller
  (:mod:`repro.sim.sequential`): replications grow in chunks until every
  requested metric's interval is tight enough, and the achieved ``n`` is
  recorded in the result.
* ``cache_dir`` plugs in the content-addressed sample store
  (:mod:`repro.experiments.store`): cached replications for the same
  ``(scenario, params, seed)`` are reused and only the remainder is
  simulated — both preserve the bit-identical-samples contract.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.experiments.backends import (
    BACKENDS,
    MissingKernelError,
    resolve_backend,
    simulate_scenario_batch,
)
from repro.experiments.registry import Scenario, get_scenario, is_registered
from repro.experiments.store import SampleStore, StoreBackend
from repro.sim.replication import map_seed_chunks
from repro.sim.sequential import PrecisionTarget, run_sequential_replications
from repro.utils.rng import spawn_seed_sequences
from repro.utils.serialization import jsonable as _jsonable
from repro.utils.stats import summarize_rows

__all__ = ["MetricSummary", "ScenarioResult", "run_scenario", "run_scenarios"]


@dataclass(frozen=True)
class MetricSummary:
    """Aggregated statistics for one named metric across replications."""

    name: str
    mean: float
    half_width: float
    std: float
    minimum: float
    maximum: float
    level: float
    n: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON serialisation."""
        return {
            "name": self.name,
            "mean": self.mean,
            "half_width": self.half_width,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "level": self.level,
            "n": self.n,
        }


@dataclass(frozen=True)
class ScenarioResult:
    """Everything measured for one scenario run."""

    scenario_id: str
    title: str
    claim: str
    verdict: str
    n_replications: int
    seed: int | None
    params: dict[str, Any]
    metrics: dict[str, MetricSummary]
    checks: dict[str, bool]
    elapsed_seconds: float
    # check name -> "ExcType: message" for checks that raised instead of
    # returning; such checks appear as False in ``checks``
    check_errors: dict[str, str] = field(default_factory=dict)
    samples: dict[str, list[float]] = field(default_factory=dict, repr=False)
    backend: str = "event"  # the backend that actually ran (never "auto")
    # adaptive-precision bookkeeping: None for fixed-n runs, else the
    # target spec plus whether the achieved n (= n_replications) met it
    precision: dict[str, Any] | None = None
    # replications restored from the sample store instead of simulated
    cached_replications: int = 0

    @property
    def all_checks_pass(self) -> bool:
        """Whether every registered shape check holds for the aggregated
        metrics."""
        return all(self.checks.values())

    def means(self) -> dict[str, float]:
        """Metric name → point estimate."""
        return {name: s.mean for name, s in self.metrics.items()}

    def to_dict(self, *, include_samples: bool = False) -> dict[str, Any]:
        """Plain-dict form for JSON serialisation."""
        out: dict[str, Any] = {
            "scenario_id": self.scenario_id,
            "title": self.title,
            "claim": self.claim,
            "verdict": self.verdict,
            "n_replications": self.n_replications,
            "seed": self.seed,
            "params": _jsonable(self.params),
            "metrics": {k: v.to_dict() for k, v in self.metrics.items()},
            "checks": dict(self.checks),
            "check_errors": dict(self.check_errors),
            "all_checks_pass": self.all_checks_pass,
            "elapsed_seconds": self.elapsed_seconds,
            "backend": self.backend,
            "precision": self.precision,
            "cached_replications": self.cached_replications,
        }
        if include_samples:
            out["samples"] = {k: list(v) for k, v in self.samples.items()}
        return out


def _simulate_chunk(
    payload: tuple,
    seeds: Sequence[np.random.SeedSequence],
) -> list[dict[str, float]]:
    """Worker body: run a chunk of replications for one scenario.

    ``payload`` is ``(scenario_id, None, params, backend)`` for registered
    scenarios — the id is re-resolved inside the worker, so only plain
    data crosses the process boundary and the registry is re-populated by
    the import inside :func:`get_scenario` even under the ``spawn`` start
    method — or ``(scenario_id, simulate_fn, params, backend)`` for ad-hoc
    :class:`Scenario` objects that exist only in the calling process
    (their ``simulate`` must then itself be picklable; ad-hoc scenarios
    always run on the event backend).  ``backend`` is already resolved to
    ``"event"`` or ``"vectorized"``.  A vectorized chunk is one kernel
    call over the chunk's seeds — each replication still consumes only its
    own seed's streams, so chunking cannot change results.
    """
    scenario_id, simulate, params, backend = payload
    if backend == "vectorized" and simulate is None:
        return simulate_scenario_batch(scenario_id, seeds, params)
    if simulate is None:
        simulate = get_scenario(scenario_id).simulate
    return [simulate(ss, params) for ss in seeds]


def _aggregate(
    rows: list[dict[str, float]], level: float
) -> tuple[dict[str, MetricSummary], dict[str, list[float]]]:
    """Vectorised aggregation via :func:`repro.utils.stats.summarize_rows`.

    A metric reported by only ``k < n`` replications is aggregated over
    its ``k`` observations — its ``MetricSummary.n``, t-quantile and
    ``sqrt(n)`` all use ``k``, not the replication count — so intervals
    for partially-reported metrics are never optimistically narrow."""
    agg = summarize_rows(rows, level=level)
    metrics = {
        name: MetricSummary(
            name=name,
            mean=float(agg.mean[j]),
            half_width=float(agg.half_width[j]),
            std=float(agg.std[j]),
            minimum=float(agg.minimum[j]),
            maximum=float(agg.maximum[j]),
            level=level,
            n=int(agg.counts[j]),
        )
        for j, name in enumerate(agg.names)
    }
    samples = {name: agg.matrix[:, j].tolist() for j, name in enumerate(agg.names)}
    return metrics, samples


def run_scenario(
    scenario: Scenario | str,
    *,
    replications: int = 10,
    seed: int | None = 0,
    workers: int | None = 1,
    params: Mapping[str, Any] | None = None,
    level: float = 0.95,
    backend: str = "auto",
    target_precision: PrecisionTarget | float | None = None,
    min_reps: int | None = None,
    max_reps: int | None = None,
    cache_dir: str | os.PathLike | StoreBackend | None = None,
) -> ScenarioResult:
    """Run one scenario for a fixed or adaptively chosen replication count.

    Parameters
    ----------
    scenario:
        A :class:`~repro.experiments.registry.Scenario` or its id.
    replications:
        Number of independent replications (ignored when
        ``target_precision`` is given — the controller picks ``n``).
    seed:
        Root seed; replication ``i`` always sees the same stream for a
        given root seed, independent of ``workers``.
    workers:
        Process count for the fan-out; ``None``/0 means all cores, 1 runs
        serially in-process.
    params:
        Overrides merged over the scenario's declared defaults.
    level:
        Confidence level for the per-metric intervals (and the adaptive
        stopping rule); must lie strictly inside (0, 1).
    backend:
        ``"event"``, ``"vectorized"`` or ``"auto"``.  Vectorized kernels
        are bit-for-bit equivalent to the event path (enforced by the
        cross-backend test harness), so ``"auto"`` — use the kernel when
        one exists — never changes results, only wall-clock time.
        Requesting ``"vectorized"`` for a scenario without a kernel (or
        for an ad-hoc, unregistered scenario object) raises
        :class:`~repro.experiments.backends.MissingKernelError` naming
        the scenario instead of silently running the event engine.
    target_precision:
        Switch to adaptive sequential replication: a
        :class:`~repro.sim.sequential.PrecisionTarget`, or a bare float
        meaning a relative half-width target for every reported metric.
        Replications run in growing chunks until the target is met (or
        ``max_reps`` is hit); the achieved ``n`` is recorded in
        ``n_replications`` and the outcome in ``ScenarioResult.precision``.
        Stopping at ``n`` yields samples bit-identical to a fixed-``n``
        run with the same seed, for any worker count and either backend.
    min_reps, max_reps:
        Bounds for the adaptive controller (defaults
        ``DEFAULT_MIN_REPS``/``DEFAULT_MAX_REPS``); only valid together
        with ``target_precision``.
    cache_dir:
        Directory (or :class:`~repro.experiments.store.SampleStore`) of
        the content-addressed sample store.  Replications already cached
        for this ``(scenario, params, seed)`` are reused and only the
        remainder is simulated; afterwards the grown prefix is written
        back.  Requires a registered scenario and a non-``None`` seed
        (both are part of the content address).
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    if not 0 < level < 1:
        raise ValueError(f"level must be in (0, 1), got {level}")
    if target_precision is None and (min_reps is not None or max_reps is not None):
        raise ValueError("min_reps/max_reps are only valid with target_precision")
    sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
    merged = sc.params(params)
    registered = is_registered(sc)
    if registered:
        resolved = resolve_backend(sc.scenario_id, backend)
    else:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "vectorized":
            raise MissingKernelError(
                f"ad-hoc scenario {sc.scenario_id!r} is not registered and "
                f"has no vectorized kernel; request backend='event' or "
                f"'auto' to run it on the event engine."
            )
        resolved = "event"
    store: SampleStore | None = None
    if cache_dir is not None:
        if not registered:
            raise ValueError(
                f"the sample store caches by scenario id, so ad-hoc scenario "
                f"{sc.scenario_id!r} (not the registered instance) cannot be "
                f"cached; run it without cache_dir"
            )
        if seed is None:
            raise ValueError(
                "seed=None draws fresh OS entropy, so cached samples could "
                "never be reused; pass an integer seed to use cache_dir"
            )
        store = (
            SampleStore(cache_dir)
            if isinstance(cache_dir, (str, os.PathLike))
            else cache_dir  # any StoreBackend (SampleStore, MemoryStore, …)
        )
    # Registered scenarios ship only their id (workers re-resolve it, which
    # survives the spawn start method); ad-hoc Scenario objects ship their
    # simulate callable directly.
    payload = (sc.scenario_id, None if registered else sc.simulate, merged, resolved)

    cached_rows = store.load(sc.scenario_id, merged, seed) if store else None
    cached_rows = cached_rows or []
    precision: dict[str, Any] | None = None
    # elapsed_seconds is reporting-only; it never feeds metrics or seeds
    start = time.perf_counter()  # repro-lint: disable=REP003
    if target_precision is not None:

        def chunk(seed_slice: Sequence[np.random.SeedSequence]) -> list:
            return map_seed_chunks(
                _simulate_chunk, payload, seed_slice, workers=workers
            )

        outcome = run_sequential_replications(
            chunk,
            seed=seed,
            target=target_precision,
            min_reps=min_reps,
            max_reps=max_reps,
            level=level,
            initial_rows=cached_rows,
        )
        rows = outcome.rows
        achieved = outcome.n
        cached_used = achieved - outcome.simulated
        precision = {
            "target": outcome.target.to_dict(),
            "min_reps": outcome.min_reps,
            "max_reps": outcome.max_reps,
            "met": outcome.met,
            "unmet_metrics": list(outcome.unmet_metrics),
            "rounds": outcome.rounds,
        }
    else:
        seeds = spawn_seed_sequences(seed, replications)
        cached_used = min(len(cached_rows), replications)
        rows = cached_rows[:cached_used]
        if cached_used < replications:
            rows = rows + map_seed_chunks(
                _simulate_chunk, payload, seeds[cached_used:], workers=workers
            )
        achieved = replications
    elapsed = time.perf_counter() - start  # repro-lint: disable=REP003
    if store is not None:
        store.save(sc.scenario_id, merged, seed, rows)

    metrics, samples = _aggregate(rows, level)
    outcomes = sc.check_outcomes({k: v.mean for k, v in metrics.items()})
    checks = {name: out.passed for name, out in outcomes.items()}
    check_errors = {
        name: out.error for name, out in outcomes.items() if out.error is not None
    }
    return ScenarioResult(
        scenario_id=sc.scenario_id,
        title=sc.title,
        claim=sc.claim,
        verdict=sc.verdict,
        n_replications=achieved,
        seed=seed,
        params=dict(merged),
        metrics=metrics,
        checks=checks,
        check_errors=check_errors,
        elapsed_seconds=elapsed,
        samples=samples,
        backend=resolved,
        precision=precision,
        cached_replications=cached_used,
    )


def run_scenarios(
    scenario_ids: Sequence[str | Scenario],
    *,
    replications: int = 10,
    seed: int | None = 0,
    workers: int | None = 1,
    params: Mapping[str, Any] | Sequence[Mapping[str, Any] | None] | None = None,
    level: float = 0.95,
    backend: str = "auto",
    target_precision: PrecisionTarget | float | None = None,
    min_reps: int | None = None,
    max_reps: int | None = None,
    cache_dir: str | os.PathLike | StoreBackend | None = None,
    progress: Callable[[ScenarioResult], None] | None = None,
) -> list[ScenarioResult]:
    """Run several scenarios in sequence with a shared configuration.

    Each scenario derives its replication seeds from the same root seed.
    ``params`` comes in two forms:

    * a single mapping — shared overrides, applied only where a scenario
      declares the parameter (unknown keys for a given scenario are
      skipped, so a shared ``horizon`` override can target just the
      simulation-backed scenarios);
    * a sequence aligned with ``scenario_ids`` — per-entry overrides,
      applied *verbatim* to their entry (unknown keys raise, since a
      positional override was clearly meant for that scenario).  The
      sweep runner uses this form to run one scenario at many parameter
      points; the same id may appear any number of times.

    With ``target_precision`` each entry stops at its own achieved ``n``;
    with ``cache_dir`` every entry reads and grows its own sample-store
    record (distinct parameter points address distinct entries).
    ``progress`` is called with each :class:`ScenarioResult` as it
    completes, in order.
    """
    if params is None or isinstance(params, Mapping):
        shared = params or {}
        per_item: list[Mapping[str, Any] | None] = [None] * len(scenario_ids)
    else:
        if len(params) != len(scenario_ids):
            raise ValueError(
                f"per-scenario params sequence has {len(params)} entries "
                f"for {len(scenario_ids)} scenarios"
            )
        shared = None
        per_item = list(params)
    results = []
    for item, overrides in zip(scenario_ids, per_item):
        sc = get_scenario(item) if isinstance(item, str) else item
        if shared is not None:
            overrides = {k: v for k, v in shared.items() if k in sc.defaults}
        result = run_scenario(
            sc,
            replications=replications,
            seed=seed,
            workers=workers,
            params=overrides,
            level=level,
            backend=backend,
            target_precision=target_precision,
            min_reps=min_reps,
            max_reps=max_reps,
            cache_dir=cache_dir,
        )
        results.append(result)
        if progress is not None:
            progress(result)
    return results
