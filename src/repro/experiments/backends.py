"""Simulation backends for registered scenarios.

Every scenario has a trusted *event-driven* backend: its ``simulate``
function, run one replication at a time.  Scenarios listed in the kernel
registry additionally have a *vectorized* backend: a batched-numpy kernel
(defined here, on top of the primitives in :mod:`repro.sim.vectorized`)
that simulates **all replications at once** while consuming identical
randomness per replication — so the two backends return bit-for-bit the
same per-replication metrics for the same spawned seeds.

Backend selection::

    "event"       always the per-replication simulate function
    "vectorized"  the kernel when one exists, else fall back to event
    "auto"        the kernel when one exists (results are identical, so
                  auto is safe), else event

The seed-handling contract every kernel must obey:

1. the kernel receives the exact child :class:`~numpy.random.SeedSequence`
   list the runner spawned — one per replication, never re-spawned;
2. whatever generators/children the event path derives from a
   replication's seed (``default_rng(ss)``, ``ss.spawn(k)``,
   ``crn_generators(ss, k)``), the kernel derives in the same order;
3. every draw the event path makes from those generators, the kernel
   makes with an equivalent call at the same position in the stream
   (batching draws only where the consumed bit-stream is provably
   unchanged, e.g. ``rng.random(2n)`` for ``2n`` successive uniforms).

Kernels for deterministic or deterministic-dominated scenarios use the
``cached`` mode: the computation shared by all replications is hoisted
and evaluated once (for fully deterministic scenarios like E5/E18 that is
the entire replication; for the queueing scenarios E10/E11 it is the
exact cµ/Klimov/polytope analysis, while the event-driven network
simulations still run per replication).
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping, Sequence

import numpy as np

from repro.sim.vectorized import (
    batched_product_mdp,
    batched_switching_mdp,
    exponential_family_st_ordered,
    get_kernel,
    has_kernel,
    kernel_ids,
    lockstep_intree_makespans,
    lockstep_restless_rollouts,
    min_flowtime_over_permutations,
    sequence_flowtime_batch,
    subset_dp_batch,
    vectorized_kernel,
)

__all__ = [
    "BACKENDS",
    "resolve_backend",
    "simulate_scenario_batch",
    "kernel_ids",
    "has_kernel",
    "get_kernel",
]

Params = Mapping[str, Any]
Seeds = Sequence[np.random.SeedSequence]

BACKENDS = ("event", "vectorized", "auto")


def resolve_backend(scenario_id: str, backend: str) -> str:
    """Resolve a requested backend to the one that will actually run.

    ``"auto"`` and ``"vectorized"`` both resolve to ``"vectorized"``
    exactly when a kernel is registered for ``scenario_id`` and to
    ``"event"`` otherwise (the per-scenario fallback); ``"event"`` is
    always honoured verbatim.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if backend == "event":
        return "event"
    return "vectorized" if has_kernel(scenario_id) else "event"


def simulate_scenario_batch(
    scenario_id: str, seeds: Seeds, params: Params
) -> list[dict[str, float]]:
    """Run all replications of ``scenario_id`` through its vectorized
    kernel.  Raises ``KeyError`` when no kernel is registered."""
    rows = get_kernel(scenario_id).fn(seeds, params)
    if len(rows) != len(seeds):
        raise RuntimeError(
            f"kernel for {scenario_id} returned {len(rows)} rows for "
            f"{len(seeds)} seeds"
        )
    return rows


def _float_rows(columns: Mapping[str, np.ndarray], n: int) -> list[dict[str, float]]:
    """Transpose column vectors (or scalars) into per-replication dicts of
    plain floats — the event path's return type."""
    out: list[dict[str, float]] = []
    for r in range(n):
        out.append(
            {
                k: float(v) if np.ndim(v) == 0 else float(v[r])
                for k, v in columns.items()
            }
        )
    return out


# ---------------------------------------------------------------------------
# E1 — single-machine WSEPT (batched brute force + list evaluation)
# ---------------------------------------------------------------------------

@vectorized_kernel(
    "E1",
    mode="batched",
    note="brute force over all n! sequences evaluated as one (reps, perms, "
    "jobs) cumsum instead of per-permutation Python loops",
)
def batch_e1(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    from repro.batch.instances import DEFAULT_MEAN_RANGE, DEFAULT_WEIGHT_RANGE

    n_brute, n_jobs = int(params["n_brute"]), int(params["n_jobs"])
    N = len(seeds)
    raw = np.empty((N, 2 * (n_brute + n_jobs)))
    perms = np.empty((N, n_jobs), dtype=np.intp)
    for r, ss in enumerate(seeds):
        rng = np.random.default_rng(ss)
        # one block draw consumes the same doubles as the event path's
        # interleaved uniform(mean_range)/uniform(weight_range) calls
        raw[r] = rng.random(2 * (n_brute + n_jobs))
        perms[r] = rng.permutation(n_jobs)

    def instance(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lo_m, hi_m = DEFAULT_MEAN_RANGE
        lo_w, hi_w = DEFAULT_WEIGHT_RANGE
        drawn_means = lo_m + (hi_m - lo_m) * block[:, 0::2]
        weights = lo_w + (hi_w - lo_w) * block[:, 1::2]
        # Job.mean round-trips through the exponential rate: 1/(1/mean)
        means = 1.0 / (1.0 / drawn_means)
        return means, weights

    def wsept_orders(means: np.ndarray, weights: np.ndarray) -> np.ndarray:
        # stable argsort of -index == lexsort((arange, -index))
        return np.argsort(-(weights / means), axis=1, kind="stable")

    m_small, w_small = instance(raw[:, : 2 * n_brute])
    best = min_flowtime_over_permutations(m_small, w_small)
    wsept_small = sequence_flowtime_batch(
        m_small, w_small, wsept_orders(m_small, w_small)
    )
    gap = wsept_small / best - 1.0

    m_big, w_big = instance(raw[:, 2 * n_brute :])
    fifo_order = np.broadcast_to(np.arange(n_jobs, dtype=np.intp), (N, n_jobs))
    wsept = sequence_flowtime_batch(m_big, w_big, wsept_orders(m_big, w_big))
    fifo = sequence_flowtime_batch(m_big, w_big, fifo_order)
    rnd = sequence_flowtime_batch(m_big, w_big, perms)
    return _float_rows(
        {
            "brute_gap": gap,
            "wsept": wsept,
            "fifo": fifo,
            "random": rnd,
            "fifo_ratio": fifo / wsept,
            "random_ratio": rnd / wsept,
        },
        N,
    )


# ---------------------------------------------------------------------------
# E3 / E4 — parallel-machine subset DPs, batched across replications
# ---------------------------------------------------------------------------


def _uniform_rates(seeds: Seeds, params: Params) -> np.ndarray:
    lo, hi = params["rate_range"]
    n = int(params["n_jobs"])
    rates = np.empty((len(seeds), n))
    for r, ss in enumerate(seeds):
        rates[r] = np.random.default_rng(ss).uniform(lo, hi, size=n)
    return rates


@vectorized_kernel(
    "E3",
    mode="batched",
    note="subset DP evaluated once over all replications (vector-valued "
    "states) plus a batched stochastic-order certification",
)
def batch_e3(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    rates = _uniform_rates(seeds, params)
    m = int(params["m"])
    opt = subset_dp_batch(rates, m, objective="flowtime")
    sept = subset_dp_batch(rates, m, objective="flowtime", policy="sept")
    lept = subset_dp_batch(rates, m, objective="flowtime", policy="lept")
    ordered = exponential_family_st_ordered(rates)
    return _float_rows(
        {
            "opt": opt,
            "sept_gap": sept / opt - 1.0,
            "lept_ratio": lept / opt,
            "family_ordered": ordered.astype(float),
        },
        len(seeds),
    )


@vectorized_kernel(
    "E4",
    mode="batched",
    note="makespan subset DP evaluated once over all replications",
)
def batch_e4(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    rates = _uniform_rates(seeds, params)
    m = int(params["m"])
    opt = subset_dp_batch(rates, m, objective="makespan")
    lept = subset_dp_batch(rates, m, objective="makespan", policy="lept")
    sept = subset_dp_batch(rates, m, objective="makespan", policy="sept")
    return _float_rows(
        {
            "opt": opt,
            "lept_gap": lept / opt - 1.0,
            "sept_penalty": sept / opt - 1.0,
        },
        len(seeds),
    )


# ---------------------------------------------------------------------------
# E5 / E18 — fully deterministic scenarios: compute once, broadcast
# ---------------------------------------------------------------------------


def _broadcast_deterministic(
    scenario_id: str, seeds: Seeds, params: Params
) -> list[dict[str, float]]:
    """For a ``simulate`` that never touches its seed, every replication
    is the same computation: run it once and replicate the row."""
    from repro.experiments.registry import get_scenario

    if not seeds:
        return []
    row = get_scenario(scenario_id).simulate(seeds[0], params)
    return [dict(row) for _ in seeds]


@vectorized_kernel(
    "E5",
    mode="cached",
    note="the study instance is fixed and the enumeration exact — one "
    "evaluation serves every replication",
)
def batch_e5(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    return _broadcast_deterministic("E5", seeds, params)


@vectorized_kernel(
    "E18",
    mode="cached",
    note="fixed study instances, fully deterministic DPs — one evaluation "
    "serves every replication",
)
def batch_e18(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    return _broadcast_deterministic("E18", seeds, params)


# ---------------------------------------------------------------------------
# E7 — classical bandits: batched product-MDP assembly + policy tables
# ---------------------------------------------------------------------------


def _sequential_argmax(
    values: np.ndarray, tie_rank: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Emulate ``max(range(A), key=lambda a: (values[:, a], tie_rank[a]))``
    per row: a later action replaces the incumbent iff its key tuple is
    strictly greater (value strictly greater, or exactly equal value and
    strictly greater tie rank).  Returns (argmax, max values)."""
    N, A = values.shape
    best = np.zeros(N, dtype=np.int64)
    best_val = values[:, 0].copy()
    for a in range(1, A):
        v = values[:, a]
        better = (v > best_val) | ((v == best_val) & (tie_rank[a] > tie_rank[best]))
        best = np.where(better, a, best)
        best_val = np.where(better, v, best_val)
    return best, best_val


def _policy_values_batch(
    T: np.ndarray, R: np.ndarray, policies: np.ndarray, beta: float
) -> np.ndarray:
    """Batched :meth:`FiniteMDP.policy_value`: exact discounted values of
    per-replication deterministic policies, one LAPACK solve per slice
    (bit-identical to the per-replication solve)."""
    N, _, S, _ = T.shape
    rows = np.arange(N)[:, None]
    cols = np.arange(S)[None, :]
    P_pi = T[rows, policies, cols]
    r_pi = R[rows, policies, cols]
    return np.linalg.solve(np.eye(S) - beta * P_pi, r_pi[..., None])[..., 0]


@vectorized_kernel(
    "E7",
    mode="batched",
    note="product MDPs assembled once for the whole batch and priority "
    "policies evaluated by stacked linear solves; the per-replication "
    "index-algorithm cross-check keeps its own exact control flow",
)
def batch_e7(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    from repro.bandits import (
        gittins_indices_restart,
        gittins_indices_vwb,
        random_project,
    )
    from repro.mdp.core import FiniteMDP
    from repro.mdp.solvers import policy_iteration

    beta = float(params["beta"])
    n_proj, n_states = int(params["n_projects"]), int(params["n_states"])
    algo_states = int(params["algo_states"])
    N = len(seeds)
    projects = []
    algo_projects = []
    for ss in seeds:
        rng = np.random.default_rng(ss)
        projects.append([random_project(n_states, rng) for _ in range(n_proj)])
        algo_projects.append(random_project(algo_states, rng))

    Ps = [np.stack([projects[r][a].P for r in range(N)]) for a in range(n_proj)]
    Rs = [np.stack([projects[r][a].R for r in range(N)]) for a in range(n_proj)]
    T, R, states = batched_product_mdp(Ps, Rs)
    start = states.index(tuple(0 for _ in range(n_proj)))

    opt = np.empty(N)
    for r in range(N):
        mdp = FiniteMDP(T[r], R[r], validate=False)
        opt[r] = policy_iteration(mdp, beta).value[start]

    # Gittins priority policy: per-replication VWB indices, batched table
    gammas = np.stack(
        [
            np.stack([gittins_indices_vwb(projects[r][a], beta) for a in range(n_proj)])
            for r in range(N)
        ]
    )  # (N, n_proj, n_states)
    tie_rank = -np.arange(n_proj)  # key (index, -a): ties to the lowest id
    git_policy = np.empty((N, len(states)), dtype=np.int64)
    myop_policy = np.empty((N, len(states)), dtype=np.int64)
    for i, s in enumerate(states):
        git_vals = np.stack(
            [gammas[:, a, s[a]].astype(float) for a in range(n_proj)], axis=1
        )
        myop_vals = np.stack([Rs[a][:, s[a]] for a in range(n_proj)], axis=1)
        git_policy[:, i] = _sequential_argmax(git_vals, tie_rank)[0]
        myop_policy[:, i] = _sequential_argmax(myop_vals, tie_rank)[0]
    git = _policy_values_batch(T, R, git_policy, beta)[:, start]
    myop = _policy_values_batch(T, R, myop_policy, beta)[:, start]

    algo_diff = np.empty(N)
    for r in range(N):
        proj = algo_projects[r]
        algo_diff[r] = np.max(
            np.abs(
                gittins_indices_vwb(proj, beta) - gittins_indices_restart(proj, beta)
            )
        )
    return _float_rows(
        {
            "opt": opt,
            "gittins_gap": np.abs(git / opt - 1.0),
            "myopic_loss": 1.0 - myop / opt,
            "algo_diff": algo_diff,
        },
        N,
    )


# ---------------------------------------------------------------------------
# E8 — restless fleets: shared bound/index computation + lockstep rollouts
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E8",
    mode="batched",
    note="the LP bound and Whittle/myopic index tables are identical for "
    "every replication and computed once; the fleet rollouts run in "
    "lockstep across replications",
)
def batch_e8(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    from repro.bandits import average_relaxation_bound, myopic_rule, whittle_rule
    from repro.experiments.scenarios import _e8_project

    proj = _e8_project()
    alpha = float(params["alpha"])
    horizon, warmup = int(params["horizon"]), int(params["warmup"])
    sizes = [int(n) for n in params["fleet_sizes"]]
    N = len(seeds)

    bound, _ = average_relaxation_bound(proj, alpha)
    w_rule, m_rule = whittle_rule(proj), myopic_rule(proj)
    K = proj.n_states
    w_table = np.array([w_rule.index(0, s) for s in range(K)])
    m_table = np.array([m_rule.index(0, s) for s in range(K)])
    cum0 = np.cumsum(proj.P0, axis=1)
    cum1 = np.cumsum(proj.P1, axis=1)

    gens = [np.random.default_rng(ss).spawn(len(sizes) + 1) for ss in seeds]
    gaps = np.empty((len(sizes), N))
    whittle_large = np.zeros(N)
    for i, n in enumerate(sizes):
        got = lockstep_restless_rollouts(
            cum0,
            cum1,
            proj.R0,
            proj.R1,
            w_table,
            n,
            int(alpha * n),
            horizon,
            [g[i] for g in gens],
            warmup=warmup,
        )
        gaps[i] = bound - got
        whittle_large = got
    myop = lockstep_restless_rollouts(
        cum0,
        cum1,
        proj.R0,
        proj.R1,
        m_table,
        sizes[-1],
        int(alpha * sizes[-1]),
        horizon,
        [g[-1] for g in gens],
        warmup=warmup,
    )
    return _float_rows(
        {
            "bound": float(bound),
            "first_gap": gaps[0],
            "last_gap": gaps[-1],
            # elementwise minimum replicates min() over the per-size floats
            "min_gap": gaps.min(axis=0),
            "whittle_large_n": whittle_large,
            "myopic": myop,
        },
        N,
    )


# ---------------------------------------------------------------------------
# E9 — switching costs: batched switching-MDP assembly + policy tables
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E9",
    mode="batched",
    note="the joint switching MDP is assembled once for the whole batch "
    "(the event path rebuilds it three times per replication) and both "
    "heuristic policies share one set of VWB index tables",
)
def batch_e9(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    from repro.bandits import gittins_indices_vwb, random_project
    from repro.mdp.core import FiniteMDP
    from repro.mdp.solvers import policy_iteration

    beta, cost = float(params["beta"]), float(params["cost"])
    n_proj, n_states = int(params["n_projects"]), int(params["n_states"])
    N = len(seeds)
    # the event path draws every project from one generator in sequence
    projects = []
    for ss in seeds:
        rng = np.random.default_rng(ss)
        projects.append([random_project(n_states, rng) for _ in range(n_proj)])

    Ps = [np.stack([projects[r][a].P for r in range(N)]) for a in range(n_proj)]
    Rs = [np.stack([projects[r][a].R for r in range(N)]) for a in range(n_proj)]
    T, R, states = batched_switching_mdp(Ps, Rs, cost)
    start = states.index((tuple(0 for _ in range(n_proj)), -1))

    opt = np.empty(N)
    for r in range(N):
        mdp = FiniteMDP(T[r], R[r], validate=False)
        opt[r] = policy_iteration(mdp, beta).value[start]

    gammas = np.stack(
        [
            np.stack([gittins_indices_vwb(projects[r][a], beta) for a in range(n_proj)])
            for r in range(N)
        ]
    )
    bonus = cost * (1.0 - beta)
    plain_policy = np.empty((N, len(states)), dtype=np.int64)
    hyst_policy = np.empty((N, len(states)), dtype=np.int64)
    for i, (core, inc) in enumerate(states):
        # key (value, incumbent flag, -a) -> integer tie rank
        tie_rank = np.array(
            [(1 if a == inc else 0) * n_proj + (n_proj - 1 - a) for a in range(n_proj)]
        )
        plain_vals = np.stack(
            [gammas[:, a, core[a]].astype(float) for a in range(n_proj)], axis=1
        )
        hyst_vals = np.stack(
            [
                gammas[:, a, core[a]].astype(float) + (bonus if a == inc else 0.0)
                for a in range(n_proj)
            ],
            axis=1,
        )
        plain_policy[:, i] = _sequential_argmax(plain_vals, tie_rank)[0]
        hyst_policy[:, i] = _sequential_argmax(hyst_vals, tie_rank)[0]
    plain = _policy_values_batch(T, R, plain_policy, beta)[:, start]
    hyst = _policy_values_batch(T, R, hyst_policy, beta)[:, start]
    return _float_rows(
        {"opt": opt, "plain_frac": plain / opt, "hyst_frac": hyst / opt},
        N,
    )


# ---------------------------------------------------------------------------
# E10 / E11 — multiclass M/G/1 and Klimov: shared exact analysis, event
# simulations per replication
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E10",
    mode="cached",
    note="the cµ/Cobham/polytope analysis is deterministic and hoisted out "
    "of the replication loop; the CRN network simulations remain "
    "event-driven per replication",
)
def batch_e10(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    from repro.core.conservation import (
        check_strong_conservation,
        performance_polytope_vertices,
    )
    from repro.experiments.scenarios import _E10_ARRIVAL, _E10_COSTS, _e10_services
    from repro.queueing import optimal_average_cost, order_average_cost, simulate_network
    from repro.queueing.network import ClassConfig, QueueingNetwork, StationConfig
    from repro.utils.rng import crn_generators

    services = _e10_services()
    arrival, costs = list(_E10_ARRIVAL), list(_E10_COSTS)
    horizon = float(params["horizon"])

    opt_cost, cmu = optimal_average_cost(arrival, services, costs)
    exact = {
        perm: order_average_cost(arrival, services, costs, perm)
        for perm in itertools.permutations(range(3))
    }
    best_perm = min(exact, key=exact.get)
    worst_perm = max(exact, key=exact.get)
    ms = np.array([s.mean for s in services])
    m2 = np.array([s.second_moment for s in services])
    n_vertices = float(len(performance_polytope_vertices(arrival, ms, m2)))
    rtol = float(params["conservation_rtol"])

    nets = {
        perm: QueueingNetwork(
            [
                ClassConfig(0, services[j], arrival_rate=arrival[j], cost=costs[j])
                for j in range(3)
            ],
            [StationConfig(discipline="priority", priority=perm)],
        )
        for perm in (tuple(cmu), worst_perm)
    }
    rows = []
    for ss in seeds:
        sims = {}
        for perm, rng in zip((tuple(cmu), worst_perm), crn_generators(ss, 2)):
            sims[perm] = simulate_network(nets[perm], horizon, rng)
        conserved = check_strong_conservation(
            arrival, ms, m2, sims[tuple(cmu)].mean_waits, rtol=rtol
        )
        rows.append(
            {
                "opt_cost": float(opt_cost),
                "cmu_picks_best": float(tuple(cmu) == best_perm),
                "cmu_sim_ratio": float(sims[tuple(cmu)].cost_rate / opt_cost),
                "worst_exact_ratio": float(exact[worst_perm] / opt_cost),
                "worst_sim_ratio": float(sims[worst_perm].cost_rate / opt_cost),
                "conservation_ok": float(conserved),
                "n_vertices": n_vertices,
            }
        )
    return rows


@vectorized_kernel(
    "E11",
    mode="cached",
    note="Klimov/cµ index analysis and network construction hoisted out of "
    "the replication loop; the six CRN simulations remain event-driven",
)
def batch_e11(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    from repro.distributions import Exponential
    from repro.experiments.scenarios import (
        _E11_COSTS,
        _E11_FEEDBACK,
        _E11_LAM,
        _E11_MUS,
    )
    from repro.queueing.klimov import klimov_indices, klimov_order
    from repro.queueing.mg1 import cmu_order
    from repro.queueing.network import (
        ClassConfig,
        QueueingNetwork,
        StationConfig,
        simulate_network,
    )
    from repro.utils.rng import crn_generators

    lam, mus, costs = list(_E11_LAM), list(_E11_MUS), list(_E11_COSTS)
    feedback = np.array(_E11_FEEDBACK)
    means = [1.0 / m for m in mus]
    horizon = float(params["horizon"])

    k_order = tuple(klimov_order(costs, means, feedback))
    naive = tuple(cmu_order(costs, means))
    perms = list(itertools.permutations(range(3)))
    nets = {
        perm: QueueingNetwork(
            [
                ClassConfig(0, Exponential(mus[j]), arrival_rate=lam[j], cost=costs[j])
                for j in range(3)
            ],
            [StationConfig(discipline="priority", priority=perm)],
            routing=feedback,
        )
        for perm in perms
    }
    reduce_ok = np.allclose(
        klimov_indices(costs, means, np.zeros((3, 3))),
        np.asarray(costs) / np.asarray(means),
    )
    rows = []
    for ss in seeds:
        results = {}
        for perm, rng in zip(perms, crn_generators(ss, len(perms))):
            results[perm] = simulate_network(
                nets[perm], horizon, rng, warmup_fraction=0.2
            ).cost_rate
        best = min(results.values())
        rows.append(
            {
                "klimov_cost": float(results[k_order]),
                "best_cost": float(best),
                "klimov_vs_best": float(results[k_order] / best),
                "naive_cmu_ratio": float(results[naive] / results[k_order]),
                "reduction_exact": float(reduce_ok),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E16 — in-tree precedence: lockstep HLF / random list scheduling
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E16",
    mode="batched",
    note="every batch of trees is simulated in lockstep (one completion "
    "epoch per step across all replications); per-replication draws stay "
    "on their own generators in the event path's order",
)
def batch_e16(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    from repro.batch import random_intree
    from repro.utils.rng import crn_generators

    m = int(params["m"])
    sizes = [int(n) for n in params["sizes"]]
    N = len(seeds)
    main_rngs = [np.random.default_rng(ss) for ss in seeds]
    children = [ss.spawn(len(sizes)) for ss in seeds]

    columns: dict[str, np.ndarray] = {}
    for si, n in enumerate(sizes):
        parents = np.empty((N, n), dtype=np.int64)
        levels = []
        lb = np.empty(N)
        for r in range(N):
            seed_int = int(main_rngs[r].integers(0, 2**31 - 1))
            tree = random_intree(n, seed_int)
            parents[r] = tree.parent
            lev = tree.levels()
            levels.append(lev)
            lb[r] = max(n / m, float(lev.max() + 1))
        hlf_rngs, rnd_rngs, policy_rngs = [], [], []
        for r in range(N):
            h, w = crn_generators(children[r][si], 2)
            hlf_rngs.append(h)
            rnd_rngs.append(w)
            policy_rngs.append(np.random.default_rng(children[r][si].spawn(1)[0]))

        def hlf_select(r: int, ids: np.ndarray, m_: int) -> np.ndarray:
            lev = levels[r][ids]
            # stable argsort of -level == sorted(ids, key=(-level, id))
            return ids[np.argsort(-lev, kind="stable")[:m_]]

        def random_select(r: int, ids: np.ndarray, m_: int) -> np.ndarray:
            k = min(m_, len(ids))
            idx = policy_rngs[r].choice(len(ids), size=k, replace=False)
            return ids[idx]

        hlf = lockstep_intree_makespans(parents, m, 1.0, hlf_select, hlf_rngs)
        rnd = lockstep_intree_makespans(parents, m, 1.0, random_select, rnd_rngs)
        columns[f"hlf_ratio_n{n}"] = hlf / lb
        columns[f"random_ratio_n{n}"] = rnd / lb
    columns["hlf_ratio_small"] = columns[f"hlf_ratio_n{sizes[0]}"]
    columns["hlf_ratio_large"] = columns[f"hlf_ratio_n{sizes[-1]}"]
    columns["random_ratio_large"] = columns[f"random_ratio_n{sizes[-1]}"]
    return _float_rows(columns, N)
