"""Simulation backends for registered scenarios.

Every scenario has a trusted *event-driven* backend: its ``simulate``
function, run one replication at a time.  Scenarios listed in the kernel
registry additionally have a *vectorized* backend: a batched-numpy kernel
(declared by the scenario's pack, on top of the primitives in
:mod:`repro.sim.vectorized`) that simulates **all replications at once**
while consuming identical randomness per replication — so the two
backends return bit-for-bit the same per-replication metrics for the
same spawned seeds.

Backend selection::

    "event"       always the per-replication simulate function
    "vectorized"  the kernel; a scenario without one is an error
                  (:class:`MissingKernelError` naming the scenario)
    "auto"        the kernel when one exists (results are identical, so
                  auto is safe), else silently fall back to event

The seed-handling contract every kernel must obey:

1. the kernel receives the exact child :class:`~numpy.random.SeedSequence`
   list the runner spawned — one per replication, never re-spawned;
2. whatever generators/children the event path derives from a
   replication's seed (``default_rng(ss)``, ``ss.spawn(k)``,
   ``crn_generators(ss, k)``), the kernel derives in the same order;
3. every draw the event path makes from those generators, the kernel
   makes with an equivalent call at the same position in the stream
   (batching draws only where the consumed bit-stream is provably
   unchanged, e.g. ``rng.random(2n)`` for ``2n`` successive uniforms).

Kernels come in three modes (see
:class:`repro.sim.vectorized.VectorizedKernel`): ``batched`` kernels
vectorize the replication computation itself; ``lockstep`` kernels drive
the event-/epoch-driven scenarios through the specialised lockstep
simulators in :mod:`repro.sim.vectorized` (flat network/polling engines
and batched fleet rollouts); ``cached`` kernels hoist the
replication-invariant part (for fully deterministic scenarios like
E5/E18 that is the entire replication).

The kernel *implementations* used to live in this module; they now ship
with their scenarios in the built-in packs under
:mod:`repro.experiments.packs`.  The historical ``batch_*`` names (and
the private helpers a few kernels resolve at call time) are re-exported
below so existing imports keep working.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.experiments.packs._shared import _crn_batches, _float_rows
from repro.experiments.packs.bandits import (
    _policy_values_batch,
    _sequential_argmax,
    batch_a1,
    batch_e7,
    batch_e9,
)
from repro.experiments.packs.flowshop import (
    _broadcast_deterministic,
    _uniform_rates,
    batch_e1,
    batch_e2,
    batch_e3,
    batch_e4,
    batch_e5,
    batch_e6,
    batch_e16,
    batch_e17,
    batch_e18,
)
from repro.experiments.packs.polling import batch_e15
from repro.experiments.packs.queueing import (
    batch_a2,
    batch_a3,
    batch_e10,
    batch_e11,
    batch_e12,
    batch_e13,
    batch_e14,
)
from repro.experiments.packs.restless import batch_e8, batch_e19
from repro.sim.vectorized import get_kernel, has_kernel, kernel_ids

__all__ = [
    "BACKENDS",
    "MissingKernelError",
    "resolve_backend",
    "simulate_scenario_batch",
    "kernel_ids",
    "has_kernel",
    "get_kernel",
]

Params = Mapping[str, Any]
Seeds = Sequence[np.random.SeedSequence]

BACKENDS = ("event", "vectorized", "auto")


class MissingKernelError(ValueError):
    """An explicit ``backend="vectorized"`` request for a scenario that has
    no registered vectorized kernel.

    Raised instead of silently running the event engine, so that
    ``--backend vectorized`` always means what it says; request ``auto``
    for the per-scenario fallback behaviour.
    """


def resolve_backend(scenario_id: str, backend: str) -> str:
    """Resolve a requested backend to the one that will actually run.

    ``"auto"`` resolves to ``"vectorized"`` exactly when a kernel is
    registered for ``scenario_id`` and to ``"event"`` otherwise (the
    per-scenario fallback).  ``"vectorized"`` demands a kernel: a scenario
    without one raises :class:`MissingKernelError` naming the scenario
    rather than silently falling back.  ``"event"`` is always honoured
    verbatim.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if backend == "event":
        return "event"
    if has_kernel(scenario_id):
        return "vectorized"
    if backend == "vectorized":
        raise MissingKernelError(
            f"scenario {scenario_id!r} has no vectorized kernel; registered "
            f"kernels: {kernel_ids()}. Use backend='auto' to fall back to "
            f"the event engine for uncovered scenarios."
        )
    return "event"


def simulate_scenario_batch(
    scenario_id: str, seeds: Seeds, params: Params
) -> list[dict[str, float]]:
    """Run all replications of ``scenario_id`` through its vectorized
    kernel.  Raises ``KeyError`` when no kernel is registered."""
    rows = get_kernel(scenario_id).fn(seeds, params)
    if len(rows) != len(seeds):
        raise RuntimeError(
            f"kernel for {scenario_id} returned {len(rows)} rows for "
            f"{len(seeds)} seeds"
        )
    return rows
