"""Simulation backends for registered scenarios.

Every scenario has a trusted *event-driven* backend: its ``simulate``
function, run one replication at a time.  Scenarios listed in the kernel
registry additionally have a *vectorized* backend: a batched-numpy kernel
(defined here, on top of the primitives in :mod:`repro.sim.vectorized`)
that simulates **all replications at once** while consuming identical
randomness per replication — so the two backends return bit-for-bit the
same per-replication metrics for the same spawned seeds.

Backend selection::

    "event"       always the per-replication simulate function
    "vectorized"  the kernel; a scenario without one is an error
                  (:class:`MissingKernelError` naming the scenario)
    "auto"        the kernel when one exists (results are identical, so
                  auto is safe), else silently fall back to event

The seed-handling contract every kernel must obey:

1. the kernel receives the exact child :class:`~numpy.random.SeedSequence`
   list the runner spawned — one per replication, never re-spawned;
2. whatever generators/children the event path derives from a
   replication's seed (``default_rng(ss)``, ``ss.spawn(k)``,
   ``crn_generators(ss, k)``), the kernel derives in the same order;
3. every draw the event path makes from those generators, the kernel
   makes with an equivalent call at the same position in the stream
   (batching draws only where the consumed bit-stream is provably
   unchanged, e.g. ``rng.random(2n)`` for ``2n`` successive uniforms).

Kernels come in three modes (see
:class:`repro.sim.vectorized.VectorizedKernel`): ``batched`` kernels
vectorize the replication computation itself; ``lockstep`` kernels drive
the event-/epoch-driven scenarios through the specialised lockstep
simulators in :mod:`repro.sim.vectorized` (flat network/polling engines
and batched fleet rollouts); ``cached`` kernels hoist the
replication-invariant part (for fully deterministic scenarios like
E5/E18 that is the entire replication).
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping, Sequence

import numpy as np

from repro.sim.vectorized import (
    batched_product_mdp,
    batched_switching_mdp,
    exponential_family_st_ordered,
    flowshop_makespan_batch,
    get_kernel,
    has_kernel,
    kernel_ids,
    lockstep_heterogeneous_rollouts,
    lockstep_intree_makespans,
    lockstep_network_simulations,
    lockstep_polling_simulations,
    lockstep_restless_rollouts,
    min_flowtime_over_permutations,
    restart_gittins_batch,
    sequence_flowtime_batch,
    subset_dp_batch,
    vectorized_kernel,
)

__all__ = [
    "BACKENDS",
    "MissingKernelError",
    "resolve_backend",
    "simulate_scenario_batch",
    "kernel_ids",
    "has_kernel",
    "get_kernel",
]

Params = Mapping[str, Any]
Seeds = Sequence[np.random.SeedSequence]

BACKENDS = ("event", "vectorized", "auto")


class MissingKernelError(ValueError):
    """An explicit ``backend="vectorized"`` request for a scenario that has
    no registered vectorized kernel.

    Raised instead of silently running the event engine, so that
    ``--backend vectorized`` always means what it says; request ``auto``
    for the per-scenario fallback behaviour.
    """


def resolve_backend(scenario_id: str, backend: str) -> str:
    """Resolve a requested backend to the one that will actually run.

    ``"auto"`` resolves to ``"vectorized"`` exactly when a kernel is
    registered for ``scenario_id`` and to ``"event"`` otherwise (the
    per-scenario fallback).  ``"vectorized"`` demands a kernel: a scenario
    without one raises :class:`MissingKernelError` naming the scenario
    rather than silently falling back.  ``"event"`` is always honoured
    verbatim.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if backend == "event":
        return "event"
    if has_kernel(scenario_id):
        return "vectorized"
    if backend == "vectorized":
        raise MissingKernelError(
            f"scenario {scenario_id!r} has no vectorized kernel; registered "
            f"kernels: {kernel_ids()}. Use backend='auto' to fall back to "
            f"the event engine for uncovered scenarios."
        )
    return "event"


def simulate_scenario_batch(
    scenario_id: str, seeds: Seeds, params: Params
) -> list[dict[str, float]]:
    """Run all replications of ``scenario_id`` through its vectorized
    kernel.  Raises ``KeyError`` when no kernel is registered."""
    rows = get_kernel(scenario_id).fn(seeds, params)
    if len(rows) != len(seeds):
        raise RuntimeError(
            f"kernel for {scenario_id} returned {len(rows)} rows for "
            f"{len(seeds)} seeds"
        )
    return rows


def _float_rows(columns: Mapping[str, np.ndarray], n: int) -> list[dict[str, float]]:
    """Transpose column vectors (or scalars) into per-replication dicts of
    plain floats — the event path's return type."""
    out: list[dict[str, float]] = []
    for r in range(n):
        out.append(
            {
                k: float(v) if np.ndim(v) == 0 else float(v[r])
                for k, v in columns.items()
            }
        )
    return out


# ---------------------------------------------------------------------------
# E1 — single-machine WSEPT (batched brute force + list evaluation)
# ---------------------------------------------------------------------------

@vectorized_kernel(
    "E1",
    mode="batched",
    note="brute force over all n! sequences evaluated as one (reps, perms, "
    "jobs) cumsum instead of per-permutation Python loops",
)
def batch_e1(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E1: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e1`` on the same seeds.
    """
    from repro.batch.instances import DEFAULT_MEAN_RANGE, DEFAULT_WEIGHT_RANGE

    n_brute, n_jobs = int(params["n_brute"]), int(params["n_jobs"])
    N = len(seeds)
    raw = np.empty((N, 2 * (n_brute + n_jobs)))
    perms = np.empty((N, n_jobs), dtype=np.intp)
    for r, ss in enumerate(seeds):
        rng = np.random.default_rng(ss)
        # one block draw consumes the same doubles as the event path's
        # interleaved uniform(mean_range)/uniform(weight_range) calls
        raw[r] = rng.random(2 * (n_brute + n_jobs))
        perms[r] = rng.permutation(n_jobs)

    def instance(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lo_m, hi_m = DEFAULT_MEAN_RANGE
        lo_w, hi_w = DEFAULT_WEIGHT_RANGE
        drawn_means = lo_m + (hi_m - lo_m) * block[:, 0::2]
        weights = lo_w + (hi_w - lo_w) * block[:, 1::2]
        # Job.mean round-trips through the exponential rate: 1/(1/mean)
        means = 1.0 / (1.0 / drawn_means)
        return means, weights

    def wsept_orders(means: np.ndarray, weights: np.ndarray) -> np.ndarray:
        # stable argsort of -index == lexsort((arange, -index))
        return np.argsort(-(weights / means), axis=1, kind="stable")

    m_small, w_small = instance(raw[:, : 2 * n_brute])
    best = min_flowtime_over_permutations(m_small, w_small)
    wsept_small = sequence_flowtime_batch(
        m_small, w_small, wsept_orders(m_small, w_small)
    )
    gap = wsept_small / best - 1.0

    m_big, w_big = instance(raw[:, 2 * n_brute :])
    fifo_order = np.broadcast_to(np.arange(n_jobs, dtype=np.intp), (N, n_jobs))
    wsept = sequence_flowtime_batch(m_big, w_big, wsept_orders(m_big, w_big))
    fifo = sequence_flowtime_batch(m_big, w_big, fifo_order)
    rnd = sequence_flowtime_batch(m_big, w_big, perms)
    return _float_rows(
        {
            "brute_gap": gap,
            "wsept": wsept,
            "fifo": fifo,
            "random": rnd,
            "fifo_ratio": fifo / wsept,
            "random_ratio": rnd / wsept,
        },
        N,
    )


# ---------------------------------------------------------------------------
# E3 / E4 — parallel-machine subset DPs, batched across replications
# ---------------------------------------------------------------------------


def _uniform_rates(seeds: Seeds, params: Params) -> np.ndarray:
    lo, hi = params["rate_range"]
    n = int(params["n_jobs"])
    rates = np.empty((len(seeds), n))
    for r, ss in enumerate(seeds):
        rates[r] = np.random.default_rng(ss).uniform(lo, hi, size=n)
    return rates


@vectorized_kernel(
    "E3",
    mode="batched",
    note="subset DP evaluated once over all replications (vector-valued "
    "states) plus a batched stochastic-order certification",
)
def batch_e3(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E3: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e3`` on the same seeds.
    """
    rates = _uniform_rates(seeds, params)
    m = int(params["m"])
    opt = subset_dp_batch(rates, m, objective="flowtime")
    sept = subset_dp_batch(rates, m, objective="flowtime", policy="sept")
    lept = subset_dp_batch(rates, m, objective="flowtime", policy="lept")
    ordered = exponential_family_st_ordered(rates)
    return _float_rows(
        {
            "opt": opt,
            "sept_gap": sept / opt - 1.0,
            "lept_ratio": lept / opt,
            "family_ordered": ordered.astype(float),
        },
        len(seeds),
    )


@vectorized_kernel(
    "E4",
    mode="batched",
    note="makespan subset DP evaluated once over all replications",
)
def batch_e4(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E4: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e4`` on the same seeds.
    """
    rates = _uniform_rates(seeds, params)
    m = int(params["m"])
    opt = subset_dp_batch(rates, m, objective="makespan")
    lept = subset_dp_batch(rates, m, objective="makespan", policy="lept")
    sept = subset_dp_batch(rates, m, objective="makespan", policy="sept")
    return _float_rows(
        {
            "opt": opt,
            "lept_gap": lept / opt - 1.0,
            "sept_penalty": sept / opt - 1.0,
        },
        len(seeds),
    )


# ---------------------------------------------------------------------------
# E5 / E18 — fully deterministic scenarios: compute once, broadcast
# ---------------------------------------------------------------------------


def _broadcast_deterministic(
    scenario_id: str, seeds: Seeds, params: Params
) -> list[dict[str, float]]:
    """For a ``simulate`` that never touches its seed, every replication
    is the same computation: run it once and replicate the row."""
    from repro.experiments.registry import get_scenario

    if not seeds:
        return []
    row = get_scenario(scenario_id).simulate(seeds[0], params)
    return [dict(row) for _ in seeds]


@vectorized_kernel(
    "E5",
    mode="cached",
    note="the study instance is fixed and the enumeration exact — one "
    "evaluation serves every replication",
)
def batch_e5(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``cached`` kernel for E5: hoists the replication-invariant work and evaluates it once for the batch;
    bit-for-bit equal to ``simulate_e5`` on the same seeds.
    """
    return _broadcast_deterministic("E5", seeds, params)


@vectorized_kernel(
    "E18",
    mode="cached",
    note="fixed study instances, fully deterministic DPs — one evaluation "
    "serves every replication",
)
def batch_e18(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``cached`` kernel for E18: hoists the replication-invariant work and evaluates it once for the batch;
    bit-for-bit equal to ``simulate_e18`` on the same seeds.
    """
    return _broadcast_deterministic("E18", seeds, params)


# ---------------------------------------------------------------------------
# E7 — classical bandits: batched product-MDP assembly + policy tables
# ---------------------------------------------------------------------------


def _sequential_argmax(
    values: np.ndarray, tie_rank: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Emulate ``max(range(A), key=lambda a: (values[:, a], tie_rank[a]))``
    per row: a later action replaces the incumbent iff its key tuple is
    strictly greater (value strictly greater, or exactly equal value and
    strictly greater tie rank).  Returns (argmax, max values)."""
    N, A = values.shape
    best = np.zeros(N, dtype=np.int64)
    best_val = values[:, 0].copy()
    for a in range(1, A):
        v = values[:, a]
        better = (v > best_val) | ((v == best_val) & (tie_rank[a] > tie_rank[best]))
        best = np.where(better, a, best)
        best_val = np.where(better, v, best_val)
    return best, best_val


def _policy_values_batch(
    T: np.ndarray, R: np.ndarray, policies: np.ndarray, beta: float
) -> np.ndarray:
    """Batched :meth:`FiniteMDP.policy_value`: exact discounted values of
    per-replication deterministic policies, one LAPACK solve per slice
    (bit-identical to the per-replication solve)."""
    N, _, S, _ = T.shape
    rows = np.arange(N)[:, None]
    cols = np.arange(S)[None, :]
    P_pi = T[rows, policies, cols]
    r_pi = R[rows, policies, cols]
    return np.linalg.solve(np.eye(S) - beta * P_pi, r_pi[..., None])[..., 0]


@vectorized_kernel(
    "E7",
    mode="batched",
    note="product MDPs assembled once for the whole batch and priority "
    "policies evaluated by stacked linear solves; the per-replication "
    "index-algorithm cross-check keeps its own exact control flow",
)
def batch_e7(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E7: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e7`` on the same seeds.
    """
    from repro.bandits import (
        gittins_indices_restart,
        gittins_indices_vwb,
        random_project,
    )
    from repro.mdp.core import FiniteMDP
    from repro.mdp.solvers import policy_iteration

    beta = float(params["beta"])
    n_proj, n_states = int(params["n_projects"]), int(params["n_states"])
    algo_states = int(params["algo_states"])
    N = len(seeds)
    projects = []
    algo_projects = []
    for ss in seeds:
        rng = np.random.default_rng(ss)
        projects.append([random_project(n_states, rng) for _ in range(n_proj)])
        algo_projects.append(random_project(algo_states, rng))

    Ps = [np.stack([projects[r][a].P for r in range(N)]) for a in range(n_proj)]
    Rs = [np.stack([projects[r][a].R for r in range(N)]) for a in range(n_proj)]
    T, R, states = batched_product_mdp(Ps, Rs)
    start = states.index(tuple(0 for _ in range(n_proj)))

    opt = np.empty(N)
    for r in range(N):
        mdp = FiniteMDP(T[r], R[r], validate=False)
        opt[r] = policy_iteration(mdp, beta).value[start]

    # Gittins priority policy: per-replication VWB indices, batched table
    gammas = np.stack(
        [
            np.stack([gittins_indices_vwb(projects[r][a], beta) for a in range(n_proj)])
            for r in range(N)
        ]
    )  # (N, n_proj, n_states)
    tie_rank = -np.arange(n_proj)  # key (index, -a): ties to the lowest id
    git_policy = np.empty((N, len(states)), dtype=np.int64)
    myop_policy = np.empty((N, len(states)), dtype=np.int64)
    for i, s in enumerate(states):
        git_vals = np.stack(
            [gammas[:, a, s[a]].astype(float) for a in range(n_proj)], axis=1
        )
        myop_vals = np.stack([Rs[a][:, s[a]] for a in range(n_proj)], axis=1)
        git_policy[:, i] = _sequential_argmax(git_vals, tie_rank)[0]
        myop_policy[:, i] = _sequential_argmax(myop_vals, tie_rank)[0]
    git = _policy_values_batch(T, R, git_policy, beta)[:, start]
    myop = _policy_values_batch(T, R, myop_policy, beta)[:, start]

    algo_diff = np.empty(N)
    for r in range(N):
        proj = algo_projects[r]
        algo_diff[r] = np.max(
            np.abs(
                gittins_indices_vwb(proj, beta) - gittins_indices_restart(proj, beta)
            )
        )
    return _float_rows(
        {
            "opt": opt,
            "gittins_gap": np.abs(git / opt - 1.0),
            "myopic_loss": 1.0 - myop / opt,
            "algo_diff": algo_diff,
        },
        N,
    )


# ---------------------------------------------------------------------------
# E8 — restless fleets: shared bound/index computation + lockstep rollouts
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E8",
    mode="batched",
    note="the LP bound and Whittle/myopic index tables are identical for "
    "every replication and computed once; the fleet rollouts run in "
    "lockstep across replications",
)
def batch_e8(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E8: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e8`` on the same seeds.
    """
    from repro.bandits import average_relaxation_bound, myopic_rule, whittle_rule
    from repro.experiments.scenarios import _e8_project

    proj = _e8_project()
    alpha = float(params["alpha"])
    horizon, warmup = int(params["horizon"]), int(params["warmup"])
    sizes = [int(n) for n in params["fleet_sizes"]]
    N = len(seeds)

    bound, _ = average_relaxation_bound(proj, alpha)
    w_rule, m_rule = whittle_rule(proj), myopic_rule(proj)
    K = proj.n_states
    w_table = np.array([w_rule.index(0, s) for s in range(K)])
    m_table = np.array([m_rule.index(0, s) for s in range(K)])
    cum0 = np.cumsum(proj.P0, axis=1)
    cum1 = np.cumsum(proj.P1, axis=1)

    gens = [np.random.default_rng(ss).spawn(len(sizes) + 1) for ss in seeds]
    gaps = np.empty((len(sizes), N))
    whittle_large = np.zeros(N)
    for i, n in enumerate(sizes):
        got = lockstep_restless_rollouts(
            cum0,
            cum1,
            proj.R0,
            proj.R1,
            w_table,
            n,
            int(alpha * n),
            horizon,
            [g[i] for g in gens],
            warmup=warmup,
        )
        gaps[i] = bound - got
        whittle_large = got
    myop = lockstep_restless_rollouts(
        cum0,
        cum1,
        proj.R0,
        proj.R1,
        m_table,
        sizes[-1],
        int(alpha * sizes[-1]),
        horizon,
        [g[-1] for g in gens],
        warmup=warmup,
    )
    return _float_rows(
        {
            "bound": float(bound),
            "first_gap": gaps[0],
            "last_gap": gaps[-1],
            # elementwise minimum replicates min() over the per-size floats
            "min_gap": gaps.min(axis=0),
            "whittle_large_n": whittle_large,
            "myopic": myop,
        },
        N,
    )


# ---------------------------------------------------------------------------
# E9 — switching costs: batched switching-MDP assembly + policy tables
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E9",
    mode="batched",
    note="the joint switching MDP is assembled once for the whole batch "
    "(the event path rebuilds it three times per replication) and both "
    "heuristic policies share one set of VWB index tables",
)
def batch_e9(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E9: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e9`` on the same seeds.
    """
    from repro.bandits import gittins_indices_vwb, random_project
    from repro.mdp.core import FiniteMDP
    from repro.mdp.solvers import policy_iteration

    beta, cost = float(params["beta"]), float(params["cost"])
    n_proj, n_states = int(params["n_projects"]), int(params["n_states"])
    N = len(seeds)
    # the event path draws every project from one generator in sequence
    projects = []
    for ss in seeds:
        rng = np.random.default_rng(ss)
        projects.append([random_project(n_states, rng) for _ in range(n_proj)])

    Ps = [np.stack([projects[r][a].P for r in range(N)]) for a in range(n_proj)]
    Rs = [np.stack([projects[r][a].R for r in range(N)]) for a in range(n_proj)]
    T, R, states = batched_switching_mdp(Ps, Rs, cost)
    start = states.index((tuple(0 for _ in range(n_proj)), -1))

    opt = np.empty(N)
    for r in range(N):
        mdp = FiniteMDP(T[r], R[r], validate=False)
        opt[r] = policy_iteration(mdp, beta).value[start]

    gammas = np.stack(
        [
            np.stack([gittins_indices_vwb(projects[r][a], beta) for a in range(n_proj)])
            for r in range(N)
        ]
    )
    bonus = cost * (1.0 - beta)
    plain_policy = np.empty((N, len(states)), dtype=np.int64)
    hyst_policy = np.empty((N, len(states)), dtype=np.int64)
    for i, (core, inc) in enumerate(states):
        # key (value, incumbent flag, -a) -> integer tie rank
        tie_rank = np.array(
            [(1 if a == inc else 0) * n_proj + (n_proj - 1 - a) for a in range(n_proj)]
        )
        plain_vals = np.stack(
            [gammas[:, a, core[a]].astype(float) for a in range(n_proj)], axis=1
        )
        hyst_vals = np.stack(
            [
                gammas[:, a, core[a]].astype(float) + (bonus if a == inc else 0.0)
                for a in range(n_proj)
            ],
            axis=1,
        )
        plain_policy[:, i] = _sequential_argmax(plain_vals, tie_rank)[0]
        hyst_policy[:, i] = _sequential_argmax(hyst_vals, tie_rank)[0]
    plain = _policy_values_batch(T, R, plain_policy, beta)[:, start]
    hyst = _policy_values_batch(T, R, hyst_policy, beta)[:, start]
    return _float_rows(
        {"opt": opt, "plain_frac": plain / opt, "hyst_frac": hyst / opt},
        N,
    )


# ---------------------------------------------------------------------------
# E10 / E11 — multiclass M/G/1 and Klimov: shared exact analysis, lockstep
# network simulations
# ---------------------------------------------------------------------------


def _crn_batches(seeds: Seeds, k: int) -> list[list[np.random.Generator]]:
    """Per-case generator batches under common random numbers: case ``i``
    gets one fresh ``default_rng(ss)`` per replication — exactly the
    generators ``crn_generators(ss, k)`` hands the event path's ``zip``."""
    return [[np.random.default_rng(ss) for ss in seeds] for _ in range(k)]


@vectorized_kernel(
    "E10",
    mode="lockstep",
    note="the cµ/Cobham/polytope analysis is deterministic and hoisted out "
    "of the replication loop; the CRN network simulations run through the "
    "flat lockstep engine",
)
def batch_e10(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E10: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e10`` on the same seeds.
    """
    from repro.core.conservation import (
        check_strong_conservation,
        performance_polytope_vertices,
    )
    from repro.experiments.scenarios import _E10_ARRIVAL, _E10_COSTS, _e10_services
    from repro.queueing import optimal_average_cost, order_average_cost
    from repro.queueing.network import ClassConfig, QueueingNetwork, StationConfig

    services = _e10_services()
    arrival, costs = list(_E10_ARRIVAL), list(_E10_COSTS)
    horizon = float(params["horizon"])

    opt_cost, cmu = optimal_average_cost(arrival, services, costs)
    exact = {
        perm: order_average_cost(arrival, services, costs, perm)
        for perm in itertools.permutations(range(3))
    }
    best_perm = min(exact, key=exact.get)
    worst_perm = max(exact, key=exact.get)
    ms = np.array([s.mean for s in services])
    m2 = np.array([s.second_moment for s in services])
    n_vertices = float(len(performance_polytope_vertices(arrival, ms, m2)))
    rtol = float(params["conservation_rtol"])

    case_perms = (tuple(cmu), worst_perm)
    sims = {}
    for perm, rngs in zip(case_perms, _crn_batches(seeds, len(case_perms))):
        net = QueueingNetwork(
            [
                ClassConfig(0, services[j], arrival_rate=arrival[j], cost=costs[j])
                for j in range(3)
            ],
            [StationConfig(discipline="priority", priority=perm)],
        )
        sims[perm] = lockstep_network_simulations(net, horizon, rngs)
    rows = []
    for r in range(len(seeds)):
        conserved = check_strong_conservation(
            arrival, ms, m2, sims[tuple(cmu)][r].mean_waits, rtol=rtol
        )
        rows.append(
            {
                "opt_cost": float(opt_cost),
                "cmu_picks_best": float(tuple(cmu) == best_perm),
                "cmu_sim_ratio": float(sims[tuple(cmu)][r].cost_rate / opt_cost),
                "worst_exact_ratio": float(exact[worst_perm] / opt_cost),
                "worst_sim_ratio": float(sims[worst_perm][r].cost_rate / opt_cost),
                "conservation_ok": float(conserved),
                "n_vertices": n_vertices,
            }
        )
    return rows


@vectorized_kernel(
    "E11",
    mode="lockstep",
    note="Klimov/cµ index analysis and network construction hoisted out of "
    "the replication loop; the six CRN simulations run through the flat "
    "lockstep engine",
)
def batch_e11(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E11: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e11`` on the same seeds.
    """
    from repro.distributions import Exponential
    from repro.experiments.scenarios import (
        _E11_COSTS,
        _E11_FEEDBACK,
        _E11_LAM,
        _E11_MUS,
    )
    from repro.queueing.klimov import klimov_indices, klimov_order
    from repro.queueing.mg1 import cmu_order
    from repro.queueing.network import ClassConfig, QueueingNetwork, StationConfig

    lam, mus, costs = list(_E11_LAM), list(_E11_MUS), list(_E11_COSTS)
    feedback = np.array(_E11_FEEDBACK)
    means = [1.0 / m for m in mus]
    horizon = float(params["horizon"])

    k_order = tuple(klimov_order(costs, means, feedback))
    naive = tuple(cmu_order(costs, means))
    perms = list(itertools.permutations(range(3)))
    reduce_ok = np.allclose(
        klimov_indices(costs, means, np.zeros((3, 3))),
        np.asarray(costs) / np.asarray(means),
    )
    results = {}
    for perm, rngs in zip(perms, _crn_batches(seeds, len(perms))):
        net = QueueingNetwork(
            [
                ClassConfig(0, Exponential(mus[j]), arrival_rate=lam[j], cost=costs[j])
                for j in range(3)
            ],
            [StationConfig(discipline="priority", priority=perm)],
            routing=feedback,
        )
        results[perm] = [
            res.cost_rate
            for res in lockstep_network_simulations(
                net, horizon, rngs, warmup_fraction=0.2
            )
        ]
    rows = []
    for r in range(len(seeds)):
        per_perm = {perm: results[perm][r] for perm in perms}
        best = min(per_perm.values())
        rows.append(
            {
                "klimov_cost": float(per_perm[k_order]),
                "best_cost": float(best),
                "klimov_vs_best": float(per_perm[k_order] / best),
                "naive_cmu_ratio": float(per_perm[naive] / per_perm[k_order]),
                "reduction_exact": float(reduce_ok),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E16 — in-tree precedence: lockstep HLF / random list scheduling
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E16",
    mode="batched",
    note="every batch of trees is simulated in lockstep (one completion "
    "epoch per step across all replications); per-replication draws stay "
    "on their own generators in the event path's order",
)
def batch_e16(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E16: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e16`` on the same seeds.
    """
    from repro.batch import random_intree
    from repro.utils.rng import crn_generators

    m = int(params["m"])
    sizes = [int(n) for n in params["sizes"]]
    N = len(seeds)
    main_rngs = [np.random.default_rng(ss) for ss in seeds]
    children = [ss.spawn(len(sizes)) for ss in seeds]

    columns: dict[str, np.ndarray] = {}
    for si, n in enumerate(sizes):
        parents = np.empty((N, n), dtype=np.int64)
        levels = []
        lb = np.empty(N)
        for r in range(N):
            seed_int = int(main_rngs[r].integers(0, 2**31 - 1))
            tree = random_intree(n, seed_int)
            parents[r] = tree.parent
            lev = tree.levels()
            levels.append(lev)
            lb[r] = max(n / m, float(lev.max() + 1))
        hlf_rngs, rnd_rngs, policy_rngs = [], [], []
        for r in range(N):
            h, w = crn_generators(children[r][si], 2)
            hlf_rngs.append(h)
            rnd_rngs.append(w)
            policy_rngs.append(np.random.default_rng(children[r][si].spawn(1)[0]))

        def hlf_select(r: int, ids: np.ndarray, m_: int) -> np.ndarray:
            lev = levels[r][ids]
            # stable argsort of -level == sorted(ids, key=(-level, id))
            return ids[np.argsort(-lev, kind="stable")[:m_]]

        def random_select(r: int, ids: np.ndarray, m_: int) -> np.ndarray:
            k = min(m_, len(ids))
            idx = policy_rngs[r].choice(len(ids), size=k, replace=False)
            return ids[idx]

        hlf = lockstep_intree_makespans(parents, m, 1.0, hlf_select, hlf_rngs)
        rnd = lockstep_intree_makespans(parents, m, 1.0, random_select, rnd_rngs)
        columns[f"hlf_ratio_n{n}"] = hlf / lb
        columns[f"random_ratio_n{n}"] = rnd / lb
    columns["hlf_ratio_small"] = columns[f"hlf_ratio_n{sizes[0]}"]
    columns["hlf_ratio_large"] = columns[f"hlf_ratio_n{sizes[-1]}"]
    columns["random_ratio_large"] = columns[f"random_ratio_n{sizes[-1]}"]
    return _float_rows(columns, N)


# ---------------------------------------------------------------------------
# E2 — Sevcik preemptive index: deterministic memoryless half hoisted
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E2",
    mode="cached",
    note="the memoryless-job half of the study is fully deterministic and "
    "computed once for the whole batch; the random-SCV DHR half keeps its "
    "exact per-replication DPs",
)
def batch_e2(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``cached`` kernel for E2: hoists the replication-invariant work and evaluates it once for the batch;
    bit-for-bit equal to ``simulate_e2`` on the same seeds.
    """
    from repro.batch.sevcik import (
        DiscreteJob,
        GittinsJobIndex,
        discretize_distribution,
        evaluate_index_policy_dp,
        nonpreemptive_wsept_cost,
        preemptive_single_machine_mdp,
    )
    from repro.distributions import Exponential, HyperExponential

    quantum = float(params["quantum"])
    n_quanta = int(params["n_quanta"])
    lo, hi = params["scv_range"]

    mem = [
        DiscreteJob(
            id=j,
            pmf=discretize_distribution(Exponential.from_mean(mean), 0.5, n_quanta),
            weight=1.0,
        )
        for j, mean in enumerate((1.0, 2.0, 3.0))
    ]
    opt_mem, _ = preemptive_single_machine_mdp(mem)
    gittins_mem = evaluate_index_policy_dp(mem, GittinsJobIndex(mem))
    wsept_mem = nonpreemptive_wsept_cost(mem)
    mem_metrics = {
        "opt_mem": float(opt_mem),
        "gittins_mem_gap": float(abs(gittins_mem / opt_mem - 1.0)),
        "wsept_mem_premium": float(wsept_mem / opt_mem - 1.0),
    }

    rows = []
    for ss in seeds:
        rng = np.random.default_rng(ss)
        scvs = rng.uniform(lo, hi, size=3)
        dhr = [
            DiscreteJob(
                id=j,
                pmf=discretize_distribution(
                    HyperExponential.balanced_from_mean_scv(2.0, float(scv)),
                    quantum,
                    n_quanta,
                ),
                weight=1.0 + 0.3 * j,
            )
            for j, scv in enumerate(scvs)
        ]
        opt_dhr, _ = preemptive_single_machine_mdp(dhr)
        gittins_dhr = evaluate_index_policy_dp(dhr, GittinsJobIndex(dhr))
        wsept_dhr = nonpreemptive_wsept_cost(dhr)
        rows.append(
            {
                "opt_dhr": float(opt_dhr),
                "gittins_dhr_gap": float(abs(gittins_dhr / opt_dhr - 1.0)),
                "wsept_dhr_premium": float(wsept_dhr / opt_dhr - 1.0),
                **mem_metrics,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E6 — Weiss turnpike: exact subset DPs batched across replications
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E6",
    mode="batched",
    note="the nested-instance optimal and WSEPT subset DPs run once per "
    "batch with vector-valued states instead of once per replication",
)
def batch_e6(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E6: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e6`` on the same seeds.
    """
    ns = [int(n) for n in params["ns"]]
    m = int(params["m"])
    N = len(seeds)
    n_max = max(ns)
    rates = np.empty((N, n_max))
    weights = np.empty((N, n_max))
    for r, ss in enumerate(seeds):
        rng = np.random.default_rng(ss)
        # exact_gap_sweep re-seeds from a derived integer
        inner = np.random.default_rng(int(rng.integers(0, 2**31 - 1)))
        rates[r] = inner.uniform(0.3, 3.0, size=n_max)
        weights[r] = inner.uniform(0.5, 2.0, size=n_max)

    opts, vals = [], []
    for n in ns:
        r, w = rates[:, :n], weights[:, :n]
        opts.append(subset_dp_batch(r, m, objective="flowtime", weights=w))
        vals.append(
            subset_dp_batch(
                r, m, objective="flowtime", weights=w, policy="index", priority=w * r
            )
        )
    gaps = [v - o for v, o in zip(vals, opts)]
    max_gap, min_gap = gaps[0], gaps[0]
    for g in gaps[1:]:
        max_gap = np.maximum(max_gap, g)
        min_gap = np.minimum(min_gap, g)
    return _float_rows(
        {
            "opt_growth": opts[-1] / opts[0],
            "max_abs_gap": max_gap,
            "min_abs_gap": min_gap,
            "last_rel_gap": gaps[-1] / opts[-1],
        },
        N,
    )


# ---------------------------------------------------------------------------
# E12 — heavy traffic on parallel servers: lockstep M/M/m sweeps
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E12",
    mode="lockstep",
    note="the pooled preemptive-cµ lower bound and the M/M/m network are "
    "built once per sweep point; every replication's rho sweep advances "
    "through the flat lockstep engine on its own carried-over stream",
)
def batch_e12(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E12: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e12`` on the same seeds.
    """
    from repro.queueing.heavy_traffic import build_mmk, pooled_lower_bound

    mu = np.asarray(list(params["mu"]), dtype=float)
    c = np.asarray(list(params["costs"]), dtype=float)
    m = int(params["m"])
    rhos = [float(r) for r in params["rhos"]]
    horizon = float(params["horizon"])
    n = mu.size
    mix = np.full(n, 1.0 / n)
    rho0 = min(rhos)
    N = len(seeds)

    # each replication's sweep reuses one generator across the rho points,
    # exactly like parallel_server_experiment
    rngs = [np.random.default_rng(ss) for ss in seeds]
    ratios = np.empty((len(rhos), N))
    bounds = np.empty(len(rhos))
    costs_sim = np.empty((len(rhos), N))
    for i, rho in enumerate(rhos):
        if not 0 < rho < 1:
            raise ValueError("rho values must be in (0, 1)")
        lam = rho * m * mix * mu
        net = build_mmk(lam, mu, c, m)
        h = horizon * (1.0 - rho0) / (1.0 - rho)
        results = lockstep_network_simulations(net, h, rngs, warmup_fraction=0.2)
        bounds[i] = pooled_lower_bound(lam, mu, c, m)
        for r, res in enumerate(results):
            costs_sim[i, r] = res.cost_rate
            ratios[i, r] = res.cost_rate / bounds[i]
    min_ratio = ratios[0].copy()
    for i in range(1, len(rhos)):
        min_ratio = np.minimum(min_ratio, ratios[i])
    return _float_rows(
        {
            "first_ratio": ratios[0],
            "last_ratio": ratios[-1],
            "min_ratio": min_ratio,
            "last_bound": float(bounds[-1]),
            "last_cost": costs_sim[-1],
            "n_rhos": float(len(rhos)),
            "top_rho": float(rhos[-1]),
        },
        N,
    )


# ---------------------------------------------------------------------------
# E13 — Rybko–Stolyar instability: fluid analysis hoisted, lockstep sims
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E13",
    mode="lockstep",
    note="both deterministic fluid-stability integrations and the three "
    "network constructions are hoisted out of the replication loop; the "
    "stochastic sample paths run through the flat lockstep engine",
)
def batch_e13(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E13: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e13`` on the same seeds.
    """
    from repro.queueing import (
        FluidModel,
        is_fluid_stable,
        rybko_stolyar_network,
        virtual_station_load,
    )

    horizon = float(params["horizon"])
    dt, fh = float(params["fluid_dt"]), float(params["fluid_horizon"])
    bad = rybko_stolyar_network(1.0, 0.1, 0.6, priority_to_exit=True)
    fifo = rybko_stolyar_network(1.0, 0.1, 0.6, priority_to_exit=False)
    safe = rybko_stolyar_network(1.0, 0.1, 0.4, priority_to_exit=True)

    spawned = [np.random.default_rng(ss).spawn(3) for ss in seeds]
    res_bad = lockstep_network_simulations(bad, horizon, [g[0] for g in spawned])
    res_fifo = lockstep_network_simulations(fifo, horizon, [g[1] for g in spawned])
    res_safe = lockstep_network_simulations(safe, horizon, [g[2] for g in spawned])

    naive_stable = float(is_fluid_stable(FluidModel.from_network(bad), horizon=fh, dt=dt))
    aug_stable = float(
        is_fluid_stable(
            FluidModel.from_network(bad, virtual_stations=((1, 3),)), horizon=fh, dt=dt
        )
    )
    v_load = float(virtual_station_load(bad))
    rows = []
    for r in range(len(seeds)):
        rows.append(
            {
                "bad_backlog": float(res_bad[r].final_backlog),
                "fifo_backlog": float(res_fifo[r].final_backlog),
                "safe_backlog": float(res_safe[r].final_backlog),
                "instability_ratio": float(
                    res_bad[r].final_backlog / max(res_fifo[r].final_backlog, 1.0)
                ),
                "virtual_load_bad": v_load,
                "naive_fluid_stable": naive_stable,
                "augmented_fluid_stable": aug_stable,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E14 — fluid-guided policies: drain analysis hoisted, lockstep CRN sims
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E14",
    mode="lockstep",
    note="the deterministic fluid drain integrations are computed once; "
    "the CRN policy comparison runs through the flat lockstep engine",
)
def batch_e14(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E14: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e14`` on the same seeds.
    """
    from repro.experiments.scenarios import _e14_network
    from repro.queueing import FluidModel, fluid_drain_time

    horizon = float(params["horizon"])
    dt, fh = float(params["fluid_dt"]), float(params["fluid_horizon"])
    nets = {
        "exit_first": _e14_network((2, 0), (1,)),
        "entry_first": _e14_network((0, 2), (1,)),
    }
    drains = {
        name: float(fluid_drain_time(FluidModel.from_network(net), [1, 1, 1], horizon=fh, dt=dt))
        for name, net in nets.items()
    }
    costs = {}
    for (name, net), rngs in zip(nets.items(), _crn_batches(seeds, len(nets))):
        costs[name] = [
            res.cost_rate for res in lockstep_network_simulations(net, horizon, rngs)
        ]
    rows = []
    for r in range(len(seeds)):
        rows.append(
            {
                "drain_exit_first": drains["exit_first"],
                "drain_entry_first": drains["entry_first"],
                "cost_exit_first": float(costs["exit_first"][r]),
                "cost_entry_first": float(costs["entry_first"][r]),
                "exit_vs_entry_cost": float(
                    costs["exit_first"][r] / costs["entry_first"][r]
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E15 — polling with switchovers: lockstep sweeps, conservation law hoisted
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E15",
    mode="lockstep",
    note="the pseudo-conservation right-hand sides are deterministic and "
    "hoisted; all six CRN (policy, switchover) cases run through the flat "
    "polling engine with pre-drawn service blocks, including the "
    "zero-switchover idle rule",
)
def batch_e15(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E15: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e15`` on the same seeds.
    """
    from repro.distributions import Deterministic, Exponential
    from repro.experiments.scenarios import _E15_LAM
    from repro.queueing import pseudo_conservation_rhs

    svc_rates = (2.0, 1.5)
    svc = [Exponential(r) for r in svc_rates]
    lam = list(_E15_LAM)
    horizon = float(params["horizon"])
    short, long_ = params["switchover_means"]
    N = len(seeds)

    cases = [
        (pol, sw_mean, label)
        for sw_mean, label in ((float(short), "short"), (float(long_), "long"))
        for pol in ("exhaustive", "gated", "limited")
    ]
    rhs = {
        (pol, sw_mean): pseudo_conservation_rhs(
            lam, svc, [Deterministic(sw_mean), Deterministic(sw_mean)], pol
        )
        for pol, sw_mean, _ in cases
        if pol in ("exhaustive", "gated")
    }
    metrics: dict[str, list[float]] = {}
    cons_errs: list[list[float]] = [[] for _ in range(N)]
    for (pol, sw_mean, label), rngs in zip(cases, _crn_batches(seeds, len(cases))):
        results = lockstep_polling_simulations(
            lam, svc_rates, [sw_mean, sw_mean], pol, horizon, rngs
        )
        metrics[f"{pol}_{label}"] = [float(res.weighted_wait_sum) for res in results]
        if pol in ("exhaustive", "gated"):
            for r, res in enumerate(results):
                cons_errs[r].append(
                    abs(res.weighted_wait_sum / rhs[(pol, sw_mean)] - 1.0)
                )
    rows = []
    for r in range(N):
        row = {name: vals[r] for name, vals in metrics.items()}
        row["max_conservation_err"] = float(max(cons_errs[r]))
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E17 — stochastic flow shops: batched makespan recurrences
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E17",
    mode="batched",
    note="the four CRN sequence evaluations run as batched (reps,) "
    "completion recurrences; the deterministic Johnson limit is computed "
    "once for the whole batch",
)
def batch_e17(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E17: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e17`` on the same seeds.
    """
    from repro.batch.flowshop import (
        johnson_order_deterministic,
        simulate_flowshop,
        talwar_order,
    )
    from repro.experiments.scenarios import _E17_RATES, _E17_RUNNER_UP

    rates = np.array(_E17_RATES)
    order = talwar_order(rates)
    N = len(seeds)
    P = np.empty((N,) + rates.shape)
    for r, ss in enumerate(seeds):
        P[r] = np.random.default_rng(ss).exponential(1.0 / rates)

    talwar_mk = flowshop_makespan_batch(P, order)
    runner_up_mk = flowshop_makespan_batch(P, list(_E17_RUNNER_UP))
    reverse_mk = flowshop_makespan_batch(P, order[::-1])
    blocked_mk = flowshop_makespan_batch(P, order, blocking=True)

    times = 1.0 / rates
    j_order = johnson_order_deterministic(times)
    mk_j = simulate_flowshop(times, j_order)[0]
    best_det = min(
        simulate_flowshop(times, list(p))[0]
        for p in itertools.permutations(range(len(times)))
    )
    return _float_rows(
        {
            "talwar_makespan": talwar_mk,
            "runner_up_ratio": runner_up_mk / talwar_mk,
            "reverse_ratio": reverse_mk / talwar_mk,
            "blocked_minus_talwar": blocked_mk - talwar_mk,
            "johnson_gap": float(mk_j / best_det - 1.0),
        },
        N,
    )


# ---------------------------------------------------------------------------
# E19 — heterogeneous restless fleets: lockstep rollouts
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "E19",
    mode="lockstep",
    note="both policy rollouts advance all replications' fleets in "
    "lockstep on stacked (reps, projects, states) arrays; the Lagrangian "
    "bound and Whittle tables keep their exact per-replication solves "
    "(they depend on each replication's random projects and dominate the "
    "runtime)",
)
def batch_e19(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E19: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e19`` on the same seeds.
    """
    from repro.bandits import (
        heterogeneous_relaxation_bound,
        random_restless_project,
    )
    from repro.bandits.restless import whittle_indices

    n_proj, n_states = int(params["n_projects"]), int(params["n_states"])
    m = int(params["m"])
    horizon, warmup = int(params["horizon"]), int(params["warmup"])
    N = len(seeds)

    bounds = np.empty(N)
    shadow = np.empty(N)
    w_tables = np.empty((N, n_proj, n_states))
    myop_tables = np.empty((N, n_proj, n_states))
    cum0 = np.empty((N, n_proj, n_states, n_states))
    cum1 = np.empty((N, n_proj, n_states, n_states))
    R0 = np.empty((N, n_proj, n_states))
    R1 = np.empty((N, n_proj, n_states))
    sims_w, sims_m = [], []
    for r, ss in enumerate(seeds):
        rng = np.random.default_rng(ss)
        projects = [random_restless_project(n_states, rng) for _ in range(n_proj)]
        bounds[r], shadow[r] = heterogeneous_relaxation_bound(projects, m)
        # heterogeneous_whittle_rule computes exactly these per-project
        # tables; the rollout reads them as floats, like rule.index does
        for k, p in enumerate(projects):
            w_tables[r, k] = whittle_indices(p, criterion="average")
            myop_tables[r, k] = p.R1 - p.R0
            cum0[r, k] = np.cumsum(p.P0, axis=1)
            cum1[r, k] = np.cumsum(p.P1, axis=1)
            R0[r, k] = p.R0
            R1[r, k] = p.R1
        sw, sm = rng.spawn(2)
        sims_w.append(sw)
        sims_m.append(sm)

    whittle = lockstep_heterogeneous_rollouts(
        w_tables, cum0, cum1, R0, R1, m, horizon, sims_w, warmup=warmup
    )
    myopic = lockstep_heterogeneous_rollouts(
        myop_tables, cum0, cum1, R0, R1, m, horizon, sims_m, warmup=warmup
    )
    return _float_rows(
        {
            "bound": bounds,
            "shadow_price": shadow,
            "whittle_frac": whittle / bounds,
            "myopic_frac": myopic / bounds,
        },
        N,
    )


# ---------------------------------------------------------------------------
# A1 — Gittins algorithm cross-check: restart value iterations batched
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "A1",
    mode="batched",
    note="the dominant restart-in-state value iterations run over the "
    "whole batch with stacked matrix-vector products; the VWB recursion "
    "keeps its exact per-replication control flow",
)
def batch_a1(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for A1: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_a1`` on the same seeds.
    """
    from repro.bandits import gittins_indices_vwb, random_project

    beta = float(params["beta"])
    n_states = int(params["n_states"])
    projs = [random_project(n_states, np.random.default_rng(ss)) for ss in seeds]
    g_vwb = [gittins_indices_vwb(p, beta) for p in projs]
    Ps = np.stack([p.P for p in projs])
    Rs = np.stack([p.R for p in projs])
    g_restart = restart_gittins_batch(Ps, Rs, beta, tol=1e-11)
    rows = []
    for r, p in enumerate(projs):
        rows.append(
            {
                "algo_diff": float(np.max(np.abs(g_vwb[r] - g_restart[r]))),
                "top_index_err": float(abs(np.max(g_vwb[r]) - np.max(p.R))),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# A2 — M/M/1 accuracy anchor: lockstep simulation, closed forms hoisted
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "A2",
    mode="lockstep",
    note="the M/M/1 closed forms are computed once; the sample paths run "
    "through the flat lockstep engine",
)
def batch_a2(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for A2: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_a2`` on the same seeds.
    """
    from repro.distributions import Exponential
    from repro.queueing.mg1 import mm1_metrics
    from repro.queueing.network import ClassConfig, QueueingNetwork, StationConfig

    rho = float(params["rho"])
    horizon = float(params["horizon"])
    net = QueueingNetwork(
        [ClassConfig(0, Exponential(1.0), arrival_rate=rho)],
        [StationConfig(discipline="priority", priority=(0,))],
    )
    theory = mm1_metrics(rho, 1.0)
    results = lockstep_network_simulations(
        net, horizon, [np.random.default_rng(ss) for ss in seeds]
    )
    rows = []
    for res in results:
        rows.append(
            {
                "L_sim": float(res.mean_queue_lengths[0]),
                "Wq_sim": float(res.mean_waits[0]),
                "L_abs_rel_err": float(
                    abs(res.mean_queue_lengths[0] / theory["L"] - 1.0)
                ),
                "Wq_abs_rel_err": float(abs(res.mean_waits[0] / theory["Wq"] - 1.0)),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# A3 — achievable-region LP: constraint assembly and vertex scan batched
# ---------------------------------------------------------------------------


@vectorized_kernel(
    "A3",
    mode="batched",
    note="the polymatroid constraint assembly and the 120-permutation "
    "Cobham vertex scan are batched across replications; each "
    "replication's LP keeps its own exact HiGHS solve",
)
def batch_a3(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for A3: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_a3`` on the same seeds.
    """
    from scipy.optimize import linprog

    from repro.distributions import Exponential
    from repro.queueing.mg1 import optimal_average_cost

    n = int(params["n_classes"])
    N = len(seeds)
    lam = np.empty((N, n))
    mus = np.empty((N, n))
    c = np.empty((N, n))
    for r, ss in enumerate(seeds):
        rng = np.random.default_rng(ss)
        lam[r] = rng.uniform(0.02, 0.8 / n, size=n)
        # the event path draws each service rate with its own scalar call
        mus[r] = [rng.uniform(0.8, 3.0) for _ in range(n)]
        c[r] = rng.uniform(0.3, 3.0, size=n)
    svcs = [[Exponential(mus[r, j]) for j in range(n)] for r in range(N)]
    ms = 1.0 / mus  # Exponential.mean
    m2 = np.stack(
        [[s.second_moment for s in row] for row in svcs]
    )  # base-class 2/rate^2 route, computed identically per class
    rho = lam * ms

    # batched workload set function b(S) for every proper subset + full set
    def b_of(S: list[int]) -> np.ndarray:
        rhoS = rho[:, S].sum(axis=1)
        w0_full = (lam * m2).sum(axis=1) / 2.0
        w0S = (lam[:, S] * m2[:, S]).sum(axis=1) / 2.0
        return rhoS * (w0_full / (1.0 - rhoS)) + w0S

    subsets = [
        list(S)
        for r_ in range(1, n)
        for S in itertools.combinations(range(n), r_)
    ]
    A_ub = np.zeros((len(subsets), n))
    for i, S in enumerate(subsets):
        A_ub[i, S] = -1.0
    b_ub_all = np.stack([-b_of(S) for S in subsets], axis=1)  # (N, n_subsets)
    b_eq_all = b_of(list(range(n)))
    A_eq = np.ones((1, n))
    coeff = c / ms

    x = np.empty((N, n))
    for r in range(N):
        res = linprog(
            coeff[r],
            A_ub=A_ub,
            b_ub=b_ub_all[r],
            A_eq=A_eq,
            b_eq=np.array([b_eq_all[r]]),
            bounds=[(0, None)] * n,
            method="highs",
        )
        if not res.success:
            raise RuntimeError(f"achievable-region LP failed: {res.message}")
        x[r] = np.asarray(res.x)
    W = (x - lam * m2 / 2.0) / np.where(rho > 0, rho, 1.0)
    lp_cost = np.empty(N)
    for r in range(N):
        lp_cost[r] = np.dot(c[r], lam[r] * (W[r] + ms[r]))

    # batched Cobham vertex identification over all permutations
    perms = np.array(list(itertools.permutations(range(n))), dtype=np.intp)
    w0 = (lam * m2).sum(axis=1) / 2.0  # same np.sum reduction as the scalar path
    waits = np.empty((N, len(perms), n))
    sigma_prev = np.zeros((N, len(perms)))
    for pos in range(n):
        cls = perms[:, pos]  # (n_perms,)
        rho_cls = rho[:, cls]  # (N, n_perms)
        sigma_k = sigma_prev + rho_cls
        vals = w0[:, None] / ((1.0 - sigma_prev) * (1.0 - sigma_k))
        np.put_along_axis(
            waits, np.broadcast_to(cls[None, :, None], (N, len(perms), 1)),
            vals[:, :, None], axis=2
        )
        sigma_prev = sigma_k
    errs = np.max(np.abs(waits - W[:, None, :]), axis=2)
    best_idx = np.argmin(errs, axis=1)  # first minimum, like the strict < scan

    rows = []
    for r, ss in enumerate(seeds):
        exact, order = optimal_average_cost(lam[r], svcs[r], c[r])
        sol_order = [int(j) for j in perms[best_idx[r]]]
        rows.append(
            {
                "lp_cost": float(lp_cost[r]),
                "cost_rel_gap": float(abs(lp_cost[r] / exact - 1.0)),
                "orders_match": float(sol_order == list(order)),
            }
        )
    return rows
