"""The ``repro-sweep`` command-line interface.

Expands a declarative parameter sweep over one registered scenario and
runs every point through the replication runner::

    repro-sweep list                       # scenarios + sweepable params
    repro-sweep list E12                   # one scenario's param schema
    repro-sweep run E1 --axis n_jobs=20,40,80 --axis n_brute=5,6 \\
        --replications 20 --seed 0 --json sweep.json --markdown SWEEP.md
    repro-sweep run E12 --axis "rhos=(0.6,),(0.8,),(0.95,)" \\
        --base horizon=8000 --target-precision 0.1 --cache-dir .cache
    repro-sweep run E1 --axis n_jobs=20,40 --axis n_brute=5,6 \\
        --where n_brute=5                  # point filtering
    repro-sweep run E1 --mode zip --axis n_jobs=20,40 --axis n_brute=5,6
    repro-sweep run E1 --point n_jobs=20,n_brute=5 --point n_jobs=80,n_brute=6

``--axis NAME=V1,V2,…`` declares one swept parameter (values are Python
literals, split on top-level commas so tuple/list values work); ``--mode``
chooses how axes combine (``grid`` cartesian product — the default — or
``zip`` lockstep); repeated ``--point k=v,…`` flags give an explicit point
list instead.  All runner flags of ``repro-experiments run`` apply per
point: ``--backend``, ``--target-precision``/``--min-reps``/``--max-reps``
(each point stops at its own achieved n) and ``--cache-dir`` (each point
addresses its own sample-store entry, so re-running the same sweep loads
every point from cache).

Without an installed entry point the module form works identically::

    python -m repro.experiments.sweep_cli run E1 --axis n_jobs=20,40

Exit status: 0 when every point passes its scenario's shape checks, 1 when
any check fails, 2 on usage errors.  Results are deterministic in the root
``--seed``; all points share it, so points are common-random-number
comparable.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.experiments.backends import MissingKernelError, resolve_backend
from repro.experiments.cli import (
    CliError,
    _emit,
    _literal,
    _parse_param,
    _validate_run_args as _validate_shared_run_args,
)
from repro.experiments.registry import get_scenario, list_scenarios, pack_info
from repro.experiments.report import (
    canonical_sweep_document,
    generate_sweep_markdown,
    sweep_to_json,
)
from repro.experiments.sweeps import (
    SWEEP_MODES,
    SweepSpec,
    run_sweep,
    sweep_run_config,
)
from repro.sim.sequential import DEFAULT_MAX_REPS, DEFAULT_MIN_REPS

__all__ = ["main", "build_parser"]


def _split_top_level(text: str) -> list[str]:
    """Split on commas not nested inside ``()``/``[]``/``{}`` or quotes,
    so ``(0.6,),(0.9,)`` yields the two tuple literals."""
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    for ch in text:
        if quote is not None:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "\"'":
            quote = ch
            current.append(ch)
        elif ch in "([{":
            depth += 1
            current.append(ch)
        elif ch in ")]}":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def _parse_axis(text: str) -> tuple[str, list[Any]]:
    """Parse ``--axis NAME=V1,V2,…`` into the axis name and value list."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"axis {text!r} is not of the form NAME=V1,V2,..."
        )
    name, raw = text.split("=", 1)
    values = [_literal(v) for v in _split_top_level(raw)]
    if not values:
        raise argparse.ArgumentTypeError(f"axis {text!r} lists no values")
    return name.strip(), values


def _parse_point(text: str) -> dict[str, Any]:
    """Parse ``--point k1=v1,k2=v2,…`` into one explicit sweep point."""
    point: dict[str, Any] = {}
    for item in _split_top_level(text):
        if "=" not in item:
            raise argparse.ArgumentTypeError(
                f"point entry {item!r} is not of the form key=value"
            )
        key, raw = item.split("=", 1)
        point[key.strip()] = _literal(raw)
    if not point:
        raise argparse.ArgumentTypeError(f"point {text!r} lists no parameters")
    return point


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Run declarative parameter sweeps over registered "
        "scenarios.",
    )
    sub = parser.add_subparsers(dest="command")

    lst = sub.add_parser(
        "list", help="list scenarios and their sweepable parameters"
    )
    lst.add_argument(
        "scenario",
        nargs="?",
        help="show one scenario's full parameter schema (name + default)",
    )

    run = sub.add_parser("run", help="expand and run one sweep")
    run.add_argument("scenario", help="registered scenario id (e.g. E12)")
    run.add_argument(
        "--axis",
        action="append",
        default=[],
        type=_parse_axis,
        metavar="NAME=V1,V2,...",
        help="one swept parameter and its values (repeatable; values are "
        "Python literals, commas inside (...)/[...] nest)",
    )
    run.add_argument(
        "--mode",
        choices=[m for m in SWEEP_MODES if m != "list"],
        default="grid",
        help="how axes combine: grid = cartesian product (default), "
        "zip = equal-length axes advanced in lockstep",
    )
    run.add_argument(
        "--point",
        action="append",
        default=[],
        type=_parse_point,
        metavar="K1=V1,K2=V2",
        help="one explicit sweep point (repeatable); mutually exclusive "
        "with --axis/--mode",
    )
    run.add_argument(
        "--base",
        action="append",
        default=[],
        type=_parse_param,
        metavar="KEY=VALUE",
        help="fixed parameter override applied to every point (repeatable)",
    )
    run.add_argument(
        "--where",
        action="append",
        default=[],
        type=_parse_param,
        metavar="KEY=VALUE",
        help="run only points whose axis values match (repeatable; "
        "filtering never changes a surviving point's samples)",
    )
    run.add_argument(
        "--replications", type=int, default=10, help="replications per point"
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per point (0 = all cores); results are "
        "identical for every worker count",
    )
    run.add_argument("--seed", type=int, default=0, help="root seed (shared "
                     "by all points: common random numbers across the grid)")
    run.add_argument(
        "--backend",
        choices=["event", "vectorized", "auto"],
        default="auto",
        help="simulation backend for every point (bit-for-bit equivalent; "
        "vectorized errors if the scenario has no kernel)",
    )
    run.add_argument(
        "--level", type=float, default=0.95, help="confidence level"
    )
    run.add_argument(
        "--target-precision",
        type=float,
        default=None,
        metavar="REL",
        help="adaptive mode: grow each point's replication count until "
        "every metric's relative CI half-width is <= REL; --replications "
        "is ignored, each point records its achieved n",
    )
    run.add_argument(
        "--min-reps",
        type=int,
        default=None,
        help="adaptive mode: first evaluation point (default "
        f"{DEFAULT_MIN_REPS}); requires --target-precision",
    )
    run.add_argument(
        "--max-reps",
        type=int,
        default=None,
        help="adaptive mode: hard replication cap per point (default "
        f"{DEFAULT_MAX_REPS}); requires --target-precision",
    )
    run.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed sample store; every point addresses its "
        "own entry, so re-running the sweep loads every point from cache",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir (neither read nor write the sample store)",
    )
    run.add_argument(
        "--json",
        metavar="PATH",
        help="write the sweep JSON document to PATH ('-' for stdout)",
    )
    run.add_argument(
        "--markdown",
        metavar="PATH",
        help="write the Markdown sweep report to PATH ('-' for stdout)",
    )
    run.add_argument(
        "--include-samples",
        action="store_true",
        help="embed raw per-replication samples in the JSON output",
    )
    run.add_argument(
        "--canonical",
        action="store_true",
        help="emit the run-independent document projection (timings, "
        "cache-hit counts and store location neutralised) — byte-identical "
        "across re-runs and to documents served by repro-serve",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress"
    )
    return parser


def _cmd_list(scenario_id: str | None) -> int:
    if scenario_id is not None:
        try:
            sc = get_scenario(scenario_id)
        except KeyError as exc:
            raise CliError(exc.args[0]) from exc
        pack_name, pack_version = pack_info(sc.scenario_id)
        print(f"{sc.scenario_id}  {sc.title}  [{pack_name}@{pack_version}]")
        if not sc.defaults:
            print("  (no sweepable parameters)")
        for name, default in sc.defaults.items():
            print(f"  {name} = {default!r}")
        return 0
    for sc in list_scenarios():
        names = ", ".join(sc.defaults) if sc.defaults else "—"
        pack_name, pack_version = pack_info(sc.scenario_id)
        print(f"{sc.scenario_id:<4} {sc.title}  [{pack_name}@{pack_version}]")
        print(f"     params: {names}")
    return 0


def _validate_run_args(args: argparse.Namespace) -> None:
    """Sweep-specific flag validation on top of the shared runner-flag
    rules (which live in :func:`repro.experiments.cli._validate_run_args`
    so the two CLIs cannot drift)."""
    if args.point and (args.axis or args.mode != "grid"):
        raise CliError(
            "--point gives an explicit point list; it cannot be combined "
            "with --axis or --mode"
        )
    if not args.point and not args.axis:
        raise CliError("a sweep needs at least one --axis (or --point)")
    _validate_shared_run_args(args)
    duplicates = {name for i, (name, _) in enumerate(args.axis)
                  if name in [n for n, _ in args.axis[:i]]}
    if duplicates:
        raise CliError(
            f"axis name(s) repeated: {', '.join(sorted(duplicates))}"
        )


def _build_spec(args: argparse.Namespace) -> SweepSpec:
    base = dict(args.base)
    try:
        if args.point:
            spec = SweepSpec(
                args.scenario, mode="list", points=args.point, base=base
            )
        else:
            spec = SweepSpec(
                args.scenario,
                axes=dict(args.axis),
                mode=args.mode,
                base=base,
            )
        spec.resolve()  # fail on unknown scenario / axis names before running
    except (KeyError, ValueError) as exc:
        raise CliError(str(exc.args[0]) if exc.args else str(exc)) from exc
    return spec


def _cmd_run(args: argparse.Namespace) -> int:
    _validate_run_args(args)
    spec = _build_spec(args)
    cache_dir = None if args.no_cache else args.cache_dir
    if args.backend == "vectorized":
        # fail fast, before any point burns simulation time
        try:
            resolve_backend(spec.scenario_id, "vectorized")
        except MissingKernelError as exc:
            raise CliError(str(exc)) from exc

    def progress(point, res) -> None:
        if args.quiet:
            return
        status = "PASS" if res.all_checks_pass else "FAIL"
        notes = []
        if res.cached_replications:
            notes.append(f"{res.cached_replications} cached")
        if res.precision is not None:
            notes.append(
                "target met" if res.precision["met"] else "target NOT met"
            )
        note = f" ({', '.join(notes)})" if notes else ""
        print(
            f"[{point.index:>3}] {point.label()}  {status}  "
            f"{res.n_replications} reps in {res.elapsed_seconds:.2f}s "
            f"[{res.backend}]{note}",
            file=sys.stderr,
        )

    try:
        sweep = run_sweep(
            spec,
            replications=args.replications,
            seed=args.seed,
            workers=args.workers,
            level=args.level,
            backend=args.backend,
            target_precision=args.target_precision,
            min_reps=args.min_reps,
            max_reps=args.max_reps,
            cache_dir=cache_dir,
            where=dict(args.where) or None,
            progress=progress,
        )
    except (MissingKernelError, KeyError, ValueError) as exc:
        raise CliError(str(exc.args[0]) if exc.args else str(exc)) from exc

    config = sweep_run_config(
        replications=args.replications,
        seed=args.seed,
        workers=args.workers,
        backend=args.backend,
        resolved_backends=[r.backend for r in sweep.results],
        level=args.level,
        target_precision=args.target_precision,
        min_reps=args.min_reps,
        max_reps=args.max_reps,
        cache_dir=cache_dir,
    )
    if args.json or args.markdown:
        # built once; the Markdown renderer ignores embedded samples
        document = sweep.to_document(
            config=config, include_samples=args.include_samples
        )
        if args.canonical:
            document = canonical_sweep_document(document)
        if args.json:
            _emit(args.json, sweep_to_json(document))
        if args.markdown:
            _emit(args.markdown, generate_sweep_markdown(document))
    if not args.quiet:
        cached = sweep.cached_replications
        cache_note = (
            f", {cached}/{sweep.total_replications} replications from the "
            f"sample store"
            if cached
            else ""
        )
        passed = sum(1 for r in sweep.results if r.all_checks_pass)
        print(
            f"sweep: {passed}/{len(sweep.points)} points pass all checks "
            f"in {sweep.elapsed_seconds:.2f}s{cache_note}",
            file=sys.stderr,
        )
    return 0 if sweep.all_checks_pass else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-sweep`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args.scenario)
        if args.command == "run":
            return _cmd_run(args)
        parser.print_help()
        return 2
    except CliError as exc:
        print(f"repro-sweep: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
