"""Scenario packs: pluggable packages of scenarios and kernels.

A :class:`ScenarioPack` is a *manifest*: a pack name, a version, a docs
link, and — declared through its :meth:`~ScenarioPack.scenario` and
:meth:`~ScenarioPack.kernel` decorators — the scenarios it ships (simulate
function, claim, default parameters, param JSON schema, shape checks) and
their optional vectorized kernels.  Discovery is two-stage and deferred
until the first registry lookup:

1. **Built-in packs** — the family modules listed in
   :data:`BUILTIN_PACK_MODULES` (bandits / queueing networks / polling /
   flowshop+batch / restless), which carry the survey's 22 scenarios;
2. **Entry-point packs** — every entry in the ``repro.scenario_packs``
   entry-point group (``name = module:PACK``), so a third-party package
   installs new workload families without touching any core module.  A
   broken third-party pack is reported as a warning and skipped rather
   than taking down the registry.

Registration is idempotent (re-importing a pack module is a no-op) and
validated: the manifest must be well-formed, every kernel id must name a
scenario of the same pack, and each scenario's defaults must satisfy its
own declared schema — violations raise :class:`PackError` with the pack
and scenario named.

Pack provenance feeds the sample store: cached samples are keyed on
``(pack name, pack version)`` (see :mod:`repro.experiments.store`), so
bumping one pack's version invalidates exactly that pack's cache entries
and nobody else's.
"""

from __future__ import annotations

import importlib
import warnings
from typing import Any, Callable, Mapping

from repro.experiments.registry import (
    CheckFn,
    Scenario,
    SimulateFn,
    _set_pack_info,
    register,
)
from repro.sim.vectorized import VectorizedKernel, register_kernel

__all__ = [
    "ScenarioPack",
    "PackError",
    "register_pack",
    "load_packs",
    "discovered_packs",
    "BUILTIN_PACK_MODULES",
    "ENTRY_POINT_GROUP",
]

#: Modules carrying the built-in family packs, imported in this order.
BUILTIN_PACK_MODULES = (
    "repro.experiments.packs.flowshop",
    "repro.experiments.packs.bandits",
    "repro.experiments.packs.restless",
    "repro.experiments.packs.queueing",
    "repro.experiments.packs.polling",
)

#: Entry-point group third-party packs register under (``name = module:PACK``).
ENTRY_POINT_GROUP = "repro.scenario_packs"


class PackError(ValueError):
    """A malformed scenario-pack manifest (bad metadata, duplicate or
    dangling ids, defaults violating the declared schema)."""


class ScenarioPack:
    """A named, versioned manifest of scenarios and their kernels.

    Parameters
    ----------
    name:
        The pack's identity — stable across versions; part of every cache
        key of the pack's scenarios.
    version:
        The pack's version string.  Bump it when any scenario's simulate
        output changes: cached samples of *this pack only* are invalidated.
    docs:
        A documentation link (URL or repo-relative path) surfaced by
        ``repro-experiments packs``.
    schemas:
        Optional mapping of scenario id → param JSON schema, an
        alternative to passing ``schema=`` per scenario declaration.
    """

    def __init__(
        self,
        name: str,
        version: str,
        *,
        docs: str = "",
        schemas: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> None:
        self.name = name
        self.version = version
        self.docs = docs
        self._schemas = {k.upper(): dict(v) for k, v in (schemas or {}).items()}
        self.scenarios: dict[str, Scenario] = {}
        self.kernels: dict[str, VectorizedKernel] = {}

    def __repr__(self) -> str:
        return (
            f"ScenarioPack({self.name!r}, {self.version!r}, "
            f"scenarios={sorted(self.scenarios)})"
        )

    def scenario(
        self,
        scenario_id: str,
        *,
        title: str,
        claim: str,
        verdict: str,
        defaults: Mapping[str, Any] | None = None,
        checks: Mapping[str, CheckFn] | None = None,
        tags: tuple[str, ...] = (),
        schema: Mapping[str, Any] | None = None,
    ) -> Callable[[SimulateFn], SimulateFn]:
        """Decorator declaring one scenario of this pack.

        Same signature as :func:`repro.experiments.registry.scenario`
        plus ``schema``; the scenario is collected into the manifest and
        reaches the global registry when the pack is registered.  Returns
        the simulate function unchanged (so it stays picklable)."""
        key = scenario_id.upper()
        if schema is None:
            schema = self._schemas.get(key)

        def decorate(fn: SimulateFn) -> SimulateFn:
            if key in self.scenarios:
                raise PackError(
                    f"pack {self.name!r} declares scenario {scenario_id!r} twice"
                )
            self.scenarios[key] = Scenario(
                scenario_id=scenario_id,
                title=title,
                claim=claim,
                verdict=verdict,
                simulate=fn,
                defaults=dict(defaults or {}),
                checks=dict(checks or {}),
                tags=tuple(tags),
                schema=dict(schema) if schema is not None else None,
            )
            return fn

        return decorate

    def kernel(
        self, scenario_id: str, *, mode: str, note: str = ""
    ) -> Callable:
        """Decorator declaring the vectorized kernel for one of this
        pack's scenarios (same contract as
        :func:`repro.sim.vectorized.vectorized_kernel`).  Returns the
        function unchanged."""
        key = scenario_id.upper()

        def decorate(fn):
            if key in self.kernels:
                raise PackError(
                    f"pack {self.name!r} declares a kernel for {scenario_id!r} twice"
                )
            self.kernels[key] = VectorizedKernel(
                scenario_id=scenario_id, fn=fn, mode=mode, note=note
            )
            return fn

        return decorate

    def validate(self) -> None:
        """Check manifest well-formedness; raises :class:`PackError`.

        Enforced: non-empty string name/version, every kernel id names a
        scenario of this pack, and each scenario's defaults satisfy its
        own declared schema (so a pack cannot ship unrunnable defaults).
        """
        if not self.name or not isinstance(self.name, str):
            raise PackError(f"pack name must be a non-empty string, got {self.name!r}")
        if not self.version or not isinstance(self.version, str):
            raise PackError(
                f"pack {self.name!r}: version must be a non-empty string, "
                f"got {self.version!r}"
            )
        dangling = sorted(set(self.kernels) - set(self.scenarios))
        if dangling:
            raise PackError(
                f"pack {self.name!r} declares kernel(s) for {dangling} but no "
                f"matching scenario(s); a kernel must accompany its scenario"
            )
        from repro.utils.schema import schema_errors

        for key, sc in self.scenarios.items():
            if sc.schema is None:
                continue
            if not isinstance(sc.schema, Mapping):
                raise PackError(
                    f"pack {self.name!r} scenario {sc.scenario_id!r}: schema "
                    f"must be a mapping, got {type(sc.schema).__name__}"
                )
            errors = schema_errors(sc.defaults, sc.schema, path="")
            if errors:
                raise PackError(
                    f"pack {self.name!r} scenario {sc.scenario_id!r}: defaults "
                    f"violate the declared param schema: " + "; ".join(errors)
                )


# pack name -> (pack, source) for everything registered so far
_DISCOVERED: dict[str, tuple[ScenarioPack, str]] = {}
_LOADED = False


def register_pack(pack: ScenarioPack, *, source: str = "direct") -> ScenarioPack:
    """Validate a pack and push its scenarios and kernels into the global
    registries.

    Idempotent for identical content (re-importing a pack module, or the
    same pack reachable both as a built-in and an entry point, is a
    no-op); a genuine id collision raises naming the owning pack.
    ``source`` labels where the pack came from (``"builtin"``,
    ``"entry-point"``, or ``"direct"``) for the CLI listing.
    """
    if not isinstance(pack, ScenarioPack):
        raise PackError(
            f"expected a ScenarioPack, got {type(pack).__name__}; entry "
            f"points must resolve to a ScenarioPack instance"
        )
    pack.validate()
    owner = f"pack {pack.name!r} ({source})"
    for sc in pack.scenarios.values():
        register(sc, owner=owner)
        _set_pack_info(sc.scenario_id, pack.name, pack.version)
    for kernel in pack.kernels.values():
        register_kernel(kernel, owner=owner)
    _DISCOVERED[pack.name] = (pack, source)
    return pack


def load_packs() -> None:
    """Discover and register every pack: built-ins first, then the
    ``repro.scenario_packs`` entry-point group.

    Idempotent — the first call does the work, later calls return
    immediately.  A failing *built-in* pack raises (the repo is broken);
    a failing *entry-point* pack emits a warning and is skipped, so one
    broken third-party install cannot take the whole registry down.
    """
    global _LOADED
    if _LOADED:
        return
    for module_name in BUILTIN_PACK_MODULES:
        module = importlib.import_module(module_name)
        register_pack(module.PACK, source="builtin")
    for ep in _entry_points():
        if ep.name in _DISCOVERED:
            continue
        try:
            obj = ep.load()
            pack = obj() if callable(obj) and not isinstance(obj, ScenarioPack) else obj
            register_pack(pack, source="entry-point")
        except Exception as exc:
            warnings.warn(
                f"scenario pack entry point {ep.name!r} ({ep.value}) failed "
                f"to load and was skipped: {type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    _LOADED = True


def _entry_points():
    """All entries of the ``repro.scenario_packs`` group, in a form that
    works on every supported importlib.metadata API generation."""
    from importlib.metadata import entry_points

    try:
        return list(entry_points(group=ENTRY_POINT_GROUP))
    except TypeError:  # pragma: no cover - legacy (<3.10) mapping API
        return list(entry_points().get(ENTRY_POINT_GROUP, []))


def discovered_packs() -> list[tuple[ScenarioPack, str]]:
    """Every registered pack with its discovery source, built-ins first
    (in :data:`BUILTIN_PACK_MODULES` order), then by registration order."""
    load_packs()
    return list(_DISCOVERED.values())
