"""Flow-shop and batch-scheduling scenario pack (E1–E6, E16–E18).

Single-machine WSEPT and Sevcik/Gittins preemptive indexing, SEPT/LEPT on
identical parallel machines with their counterexample and turnpike
claims, HLF under in-tree precedence, Talwar's rule for the two-machine
exponential flow shop, and threshold structure on uniform machines — the
batch-scheduling half of the survey, with the vectorized kernels that
batch the brute-force/DP/recurrence computations across replications.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping, Sequence

import numpy as np

from repro.experiments.packs import ScenarioPack
from repro.utils.rng import crn_generators
from repro.experiments.packs._shared import _float_rows
from repro.sim.vectorized import (
    exponential_family_st_ordered,
    flowshop_makespan_batch,
    lockstep_intree_makespans,
    min_flowtime_over_permutations,
    sequence_flowtime_batch,
    subset_dp_batch,
)

Params = Mapping[str, Any]
Seeds = Sequence[np.random.SeedSequence]

_INT = {"type": "integer", "minimum": 1}
_POS = {"type": "number", "exclusiveMinimum": 0}

_SCHEMAS = {
    "E1": {
        "type": "object",
        "properties": {
            "n_brute": {"type": "integer", "minimum": 2, "maximum": 10},
            "n_jobs": _INT,
        },
        "additionalProperties": False,
    },
    "E2": {
        "type": "object",
        "properties": {
            "n_quanta": {"type": "integer", "minimum": 2},
            "quantum": _POS,
            "scv_range": {
                "type": "array", "items": _POS, "minItems": 2, "maxItems": 2,
            },
        },
        "additionalProperties": False,
    },
    "E3": {
        "type": "object",
        "properties": {
            "n_jobs": {"type": "integer", "minimum": 1, "maximum": 16},
            "m": _INT,
            "rate_range": {
                "type": "array", "items": _POS, "minItems": 2, "maxItems": 2,
            },
        },
        "additionalProperties": False,
    },
    "E4": {
        "type": "object",
        "properties": {
            "n_jobs": {"type": "integer", "minimum": 1, "maximum": 16},
            "m": _INT,
            "rate_range": {
                "type": "array", "items": _POS, "minItems": 2, "maxItems": 2,
            },
        },
        "additionalProperties": False,
    },
    "E5": {
        "type": "object",
        "properties": {"m": _INT},
        "additionalProperties": False,
    },
    "E6": {
        "type": "object",
        "properties": {
            "ns": {"type": "array", "items": _INT, "minItems": 1},
            "m": _INT,
        },
        "additionalProperties": False,
    },
    "E16": {
        "type": "object",
        "properties": {
            "sizes": {"type": "array", "items": _INT, "minItems": 1},
            "m": _INT,
        },
        "additionalProperties": False,
    },
    "E17": {"type": "object", "properties": {}, "additionalProperties": False},
    "E18": {"type": "object", "properties": {}, "additionalProperties": False},
}

PACK = ScenarioPack(
    name="flowshop-batch",
    version="1.0.0",
    docs="docs/ARCHITECTURE.md#scenario-packs",
    schemas=_SCHEMAS,
)


def _int_seed(rng: np.random.Generator) -> int:
    """A derived integer seed for helpers that only accept ints."""
    return int(rng.integers(0, 2**31 - 1))


@PACK.scenario(
    "E1",
    title="WSEPT minimises expected weighted flowtime on one machine",
    claim=(
        "WSEPT minimises expected weighted flowtime on one machine "
        "(Rothkopf [34] / Smith [37]): the static index rule w_i/p_i is "
        "exactly optimal among nonanticipative nonpreemptive policies."
    ),
    verdict=(
        "Reproduced exactly: zero gap to brute force on every instance; "
        "FIFO and random orders lose by the expected margins."
    ),
    defaults={"n_brute": 7, "n_jobs": 50},
    checks={
        "wsept_exactly_optimal": lambda m: m["brute_gap"] < 1e-9,
        "wsept_beats_fifo": lambda m: m["fifo_ratio"] > 1.0,
        "wsept_beats_random": lambda m: m["random_ratio"] > 1.0,
    },
    tags=("batch", "exact"),
)
def simulate_e1(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E1: WSEPT minimises expected weighted flowtime on one machine.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch import (
        brute_force_optimal_sequence,
        expected_weighted_flowtime,
        fifo_order,
        random_exponential_batch,
        random_order,
        wsept_order,
    )

    rng = np.random.default_rng(ss)
    # exact-optimality check on a brute-forceable instance
    small = random_exponential_batch(int(params["n_brute"]), rng)
    _, best = brute_force_optimal_sequence(small)
    gap = expected_weighted_flowtime(small, wsept_order(small)) / best - 1.0

    # policy comparison on a larger instance (same rng draw = same instance
    # for every policy: common random numbers at the instance level)
    jobs = random_exponential_batch(int(params["n_jobs"]), rng)
    wsept = expected_weighted_flowtime(jobs, wsept_order(jobs))
    fifo = expected_weighted_flowtime(jobs, fifo_order(jobs))
    rnd = expected_weighted_flowtime(jobs, random_order(jobs, rng))
    return {
        "brute_gap": float(gap),
        "wsept": float(wsept),
        "fifo": float(fifo),
        "random": float(rnd),
        "fifo_ratio": float(fifo / wsept),
        "random_ratio": float(rnd / wsept),
    }


@PACK.scenario(
    "E2",
    title="Sevcik/Gittins preemptive index vs nonpreemptive WSEPT",
    claim=(
        "Sevcik's preemptive index is optimal when preemption is allowed "
        "[35]; it strictly beats nonpreemptive WSEPT for DHR "
        "(high-variance) jobs and coincides with it for memoryless jobs."
    ),
    verdict=(
        "Reproduced: the index policy matches the exact DAG optimum; WSEPT "
        "pays a premium under DHR and nothing under memoryless jobs."
    ),
    defaults={"n_quanta": 12, "quantum": 0.8, "scv_range": (5.0, 10.0)},
    checks={
        "index_optimal_dhr": lambda m: m["gittins_dhr_gap"] < 1e-8,
        "preemption_helps_dhr": lambda m: m["wsept_dhr_premium"] > 0.01,
        "index_optimal_memoryless": lambda m: m["gittins_mem_gap"] < 1e-8,
        "no_gain_memoryless": lambda m: abs(m["wsept_mem_premium"]) < 0.05,
    },
    tags=("batch", "exact", "preemptive"),
)
def simulate_e2(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E2: Sevcik/Gittins preemptive index vs nonpreemptive WSEPT.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch.sevcik import (
        DiscreteJob,
        GittinsJobIndex,
        discretize_distribution,
        evaluate_index_policy_dp,
        nonpreemptive_wsept_cost,
        preemptive_single_machine_mdp,
    )
    from repro.distributions import Exponential, HyperExponential

    rng = np.random.default_rng(ss)
    quantum = float(params["quantum"])
    n_quanta = int(params["n_quanta"])
    lo, hi = params["scv_range"]
    scvs = rng.uniform(lo, hi, size=3)
    dhr = [
        DiscreteJob(
            id=j,
            pmf=discretize_distribution(
                HyperExponential.balanced_from_mean_scv(2.0, float(scv)),
                quantum,
                n_quanta,
            ),
            weight=1.0 + 0.3 * j,
        )
        for j, scv in enumerate(scvs)
    ]
    mem = [
        DiscreteJob(
            id=j,
            pmf=discretize_distribution(Exponential.from_mean(mean), 0.5, n_quanta),
            weight=1.0,
        )
        for j, mean in enumerate((1.0, 2.0, 3.0))
    ]

    opt_dhr, _ = preemptive_single_machine_mdp(dhr)
    gittins_dhr = evaluate_index_policy_dp(dhr, GittinsJobIndex(dhr))
    wsept_dhr = nonpreemptive_wsept_cost(dhr)
    opt_mem, _ = preemptive_single_machine_mdp(mem)
    gittins_mem = evaluate_index_policy_dp(mem, GittinsJobIndex(mem))
    wsept_mem = nonpreemptive_wsept_cost(mem)
    return {
        "opt_dhr": float(opt_dhr),
        "gittins_dhr_gap": float(abs(gittins_dhr / opt_dhr - 1.0)),
        "wsept_dhr_premium": float(wsept_dhr / opt_dhr - 1.0),
        "opt_mem": float(opt_mem),
        "gittins_mem_gap": float(abs(gittins_mem / opt_mem - 1.0)),
        "wsept_mem_premium": float(wsept_mem / opt_mem - 1.0),
    }


@PACK.scenario(
    "E3",
    title="SEPT minimises flowtime on identical parallel machines",
    claim=(
        "SEPT minimises total expected flowtime on identical parallel "
        "machines for exponential jobs (Glazebrook [20]); the general "
        "version requires a stochastically ordered family "
        "(Weber–Varaiya–Walrand [43])."
    ),
    verdict=(
        "Reproduced exactly against the subset DP; the instances satisfy "
        "the ordering hypothesis."
    ),
    defaults={"n_jobs": 8, "m": 2, "rate_range": (0.3, 3.0)},
    checks={
        "sept_exactly_optimal": lambda m: m["sept_gap"] < 1e-9,
        "lept_no_better": lambda m: m["lept_ratio"] >= 1.0 - 1e-9,
        "family_st_ordered": lambda m: m["family_ordered"] == 1.0,
    },
    tags=("batch", "exact", "parallel-machines"),
)
def simulate_e3(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E3: SEPT minimises flowtime on identical parallel machines.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch import flowtime_dp, policy_flowtime_dp
    from repro.distributions import Exponential, is_stochastically_ordered_family

    rng = np.random.default_rng(ss)
    lo, hi = params["rate_range"]
    rates = rng.uniform(lo, hi, size=int(params["n_jobs"]))
    m = int(params["m"])
    opt = flowtime_dp(rates, m)
    sept = policy_flowtime_dp(rates, m, "sept")
    lept = policy_flowtime_dp(rates, m, "lept")
    ordered = is_stochastically_ordered_family([Exponential(r) for r in rates])
    return {
        "opt": float(opt),
        "sept_gap": float(sept / opt - 1.0),
        "lept_ratio": float(lept / opt),
        "family_ordered": float(ordered),
    }


@PACK.scenario(
    "E4",
    title="LEPT minimises expected makespan on identical parallel machines",
    claim=(
        "LEPT minimises expected makespan on identical parallel machines "
        "for exponential jobs (Bruno–Downey–Frederickson [10])."
    ),
    verdict=(
        "Reproduced exactly; the opposite rule (SEPT) pays a visible "
        "makespan penalty."
    ),
    defaults={"n_jobs": 8, "m": 2, "rate_range": (0.3, 3.0)},
    checks={
        "lept_exactly_optimal": lambda m: m["lept_gap"] < 1e-9,
        "sept_visibly_worse": lambda m: m["sept_penalty"] > 0.0,
    },
    tags=("batch", "exact", "parallel-machines"),
)
def simulate_e4(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E4: LEPT minimises expected makespan on identical parallel machines.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch import makespan_dp, policy_makespan_dp

    rng = np.random.default_rng(ss)
    lo, hi = params["rate_range"]
    rates = rng.uniform(lo, hi, size=int(params["n_jobs"]))
    m = int(params["m"])
    opt = makespan_dp(rates, m)
    lept = policy_makespan_dp(rates, m, "lept")
    sept = policy_makespan_dp(rates, m, "sept")
    return {
        "opt": float(opt),
        "lept_gap": float(lept / opt - 1.0),
        "sept_penalty": float(sept / opt - 1.0),
    }


@PACK.scenario(
    "E5",
    title="Two-point jobs on two machines break SEPT",
    claim=(
        "Outside the assumptions the simple rules fail: with two-point "
        "processing times on two machines SEPT is strictly suboptimal "
        "(Coffman–Hofri–Weiss [13])."
    ),
    verdict=(
        "Reproduced with exact enumeration: SEPT is >2% above the optimal "
        "order on the study instance; several orders strictly beat it."
    ),
    defaults={"m": 2},
    checks={
        "sept_strictly_suboptimal": lambda m: m["sept_ratio"] > 1.02,
        "several_orders_beat_sept": lambda m: m["n_better_orders"] >= 1.0,
    },
    tags=("batch", "exact", "counterexample"),
)
def simulate_e5(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E5: Two-point jobs on two machines break SEPT.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch import Job, sept_order
    from repro.batch.parallel import exact_two_point_list_flowtime
    from repro.distributions import TwoPoint

    # The study instance (found by exact search); the computation is fully
    # deterministic, so every replication returns identical metrics.
    jobs = [
        Job(0, TwoPoint(1.016, 11.897, 0.935)),
        Job(1, TwoPoint(1.343, 7.954, 0.609)),
        Job(2, TwoPoint(1.832, 7.195, 0.556)),
        Job(3, TwoPoint(0.932, 15.481, 0.749)),
    ]
    m = int(params["m"])
    sept = tuple(sept_order(jobs))
    values = {
        perm: exact_two_point_list_flowtime(jobs, m, list(perm))
        for perm in itertools.permutations(range(len(jobs)))
    }
    best = min(values.values())
    return {
        "sept_value": float(values[sept]),
        "best_value": float(best),
        "sept_ratio": float(values[sept] / best),
        "n_better_orders": float(
            sum(v < values[sept] - 1e-9 for v in values.values())
        ),
    }


@PACK.scenario(
    "E6",
    title="WSEPT turnpike: the absolute gap is bounded in n",
    claim=(
        "Weiss's turnpike [46]: WSEPT's absolute suboptimality gap on "
        "parallel machines is bounded independent of n, so its relative "
        "gap vanishes as the batch grows."
    ),
    verdict=(
        "Reproduced with exact DP values: the optimum grows ~n^2 while the "
        "gap stays O(1); relative gap < 1% at the largest size."
    ),
    defaults={"ns": (4, 8, 12), "m": 2},
    checks={
        "optimum_grows": lambda m: m["opt_growth"] > 3.0,
        "abs_gap_bounded": lambda m: m["max_abs_gap"] < 0.5,
        "gaps_nonnegative": lambda m: m["min_abs_gap"] >= -1e-9,
        "rel_gap_vanishes": lambda m: m["last_rel_gap"] < 0.01,
    },
    tags=("batch", "exact", "asymptotics"),
)
def simulate_e6(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E6: WSEPT turnpike: the absolute gap is bounded in n.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch.turnpike import exact_gap_sweep

    rng = np.random.default_rng(ss)
    ns = [int(n) for n in params["ns"]]
    points = exact_gap_sweep(ns, m=int(params["m"]), seed=_int_seed(rng))
    return {
        "opt_growth": float(points[-1].optimal_value / points[0].optimal_value),
        "max_abs_gap": float(max(p.absolute_gap for p in points)),
        "min_abs_gap": float(min(p.absolute_gap for p in points)),
        "last_rel_gap": float(points[-1].relative_gap),
    }


@PACK.scenario(
    "E16",
    title="HLF asymptotic optimality under in-tree precedence",
    claim=(
        "HLF (Highest Level First) is asymptotically optimal for expected "
        "makespan of i.i.d. exponential jobs under in-tree precedence on "
        "parallel machines (Papadimitriou–Tsitsiklis [31])."
    ),
    verdict=(
        "Reproduced: HLF's makespan ratio to the universal lower bound "
        "improves with batch size and beats the random eligible-set policy."
    ),
    defaults={"sizes": (20, 60, 180), "m": 3},
    checks={
        "ratio_improves_with_n": lambda m: m["hlf_ratio_large"]
        <= m["hlf_ratio_small"] + 0.05,
        "hlf_near_bound": lambda m: m["hlf_ratio_large"] < 1.4,
        "hlf_beats_random": lambda m: m["random_ratio_large"]
        >= m["hlf_ratio_large"] - 0.02,
    },
    tags=("batch", "simulation", "precedence"),
)
def simulate_e16(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E16: HLF asymptotic optimality under in-tree precedence.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch import random_intree, simulate_intree_makespan
    from repro.batch.precedence import hlf_policy, random_policy

    m = int(params["m"])
    sizes = [int(n) for n in params["sizes"]]
    rng = np.random.default_rng(ss)
    metrics: dict[str, float] = {}
    for n, child in zip(sizes, ss.spawn(len(sizes))):
        tree = random_intree(n, _int_seed(rng))
        lb = max(n / m, float(tree.levels().max() + 1))
        # CRN: HLF and the random policy see the same service-time stream;
        # the random policy's *decisions* draw from a separate stream so
        # they do not desynchronise the paired service times.
        hlf_rng, rnd_rng = crn_generators(child, 2)
        policy_rng = np.random.default_rng(child.spawn(1)[0])
        hlf = simulate_intree_makespan(tree, m, 1.0, hlf_policy(tree), hlf_rng)
        rnd = simulate_intree_makespan(tree, m, 1.0, random_policy(policy_rng), rnd_rng)
        metrics[f"hlf_ratio_n{n}"] = float(hlf / lb)
        metrics[f"random_ratio_n{n}"] = float(rnd / lb)
    # aliases for the asymptotic-trend checks, valid for any sizes override
    metrics["hlf_ratio_small"] = metrics[f"hlf_ratio_n{sizes[0]}"]
    metrics["hlf_ratio_large"] = metrics[f"hlf_ratio_n{sizes[-1]}"]
    metrics["random_ratio_large"] = metrics[f"random_ratio_n{sizes[-1]}"]
    return metrics


_E17_RATES = (
    (1.46865, 2.08557),
    (1.31226, 2.05519),
    (0.75568, 2.67148),
    (2.50876, 0.64199),
    (2.22997, 2.64313),
)
# The strongest competitor among the other 119 permutations, found by an
# exhaustive CRN pilot (4000 shared realisations per permutation): Talwar's
# order (3,4,0,1,2) came first at 4.78494, this runner-up second at
# 4.78591. Beating it under CRN certifies "best of all permutations"
# without re-enumerating 120 sequences every replication.
_E17_RUNNER_UP = (3, 0, 4, 1, 2)


@PACK.scenario(
    "E17",
    title="Two-machine exponential flow shop: Talwar's rule",
    claim=(
        "Stochastic flow shops (Wie–Pinedo [49]): Talwar's index rule "
        "(decreasing mu1 - mu2) minimises expected makespan in the "
        "2-machine exponential flow shop; blocking only increases "
        "makespans; Johnson's rule is the deterministic limit."
    ),
    verdict=(
        "Reproduced: Talwar matches the empirically best permutation "
        "(CRN comparison against the strongest competitor), beats its "
        "reverse, blocking increases the makespan realisation-by-"
        "realisation, and Johnson's rule is exactly optimal in the "
        "deterministic limit."
    ),
    defaults={},
    checks={
        "talwar_best_permutation": lambda m: m["runner_up_ratio"] >= 1.0 / 1.02,
        "talwar_beats_reverse": lambda m: m["reverse_ratio"] >= 0.98,
        "blocking_hurts": lambda m: m["blocked_minus_talwar"] >= -1e-9,
        "johnson_exact_deterministic": lambda m: m["johnson_gap"] < 1e-9,
    },
    tags=("batch", "simulation", "flowshop"),
)
def simulate_e17(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E17: Two-machine exponential flow shop: Talwar's rule.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch.flowshop import (
        johnson_order_deterministic,
        simulate_flowshop,
        talwar_order,
    )

    rates = np.array(_E17_RATES)
    order = talwar_order(rates)
    rng = np.random.default_rng(ss)
    # One realisation of the processing times, shared by every sequence
    # (common random numbers): the blocking comparison is then monotone
    # realisation-by-realisation, as the theory states.
    P = rng.exponential(1.0 / rates)
    talwar_mk = simulate_flowshop(P, order)[0]
    runner_up_mk = simulate_flowshop(P, list(_E17_RUNNER_UP))[0]
    reverse_mk = simulate_flowshop(P, order[::-1])[0]
    blocked_mk = simulate_flowshop(P, order, blocking=True)[0]

    # deterministic limit: Johnson's rule vs all permutations of the means
    times = 1.0 / rates
    j_order = johnson_order_deterministic(times)
    mk_j = simulate_flowshop(times, j_order)[0]
    best_det = min(
        simulate_flowshop(times, list(p))[0]
        for p in itertools.permutations(range(len(times)))
    )
    return {
        "talwar_makespan": float(talwar_mk),
        "runner_up_ratio": float(runner_up_mk / talwar_mk),
        "reverse_ratio": float(reverse_mk / talwar_mk),
        "blocked_minus_talwar": float(blocked_mk - talwar_mk),
        "johnson_gap": float(mk_j / best_det - 1.0),
    }


@PACK.scenario(
    "E18",
    title="Uniform machines: threshold structure beyond naive greedy",
    claim=(
        "Uniform (speed-heterogeneous) machines [1, 12, 33]: optimal "
        "policies have threshold/matching structure — slow machines should "
        "sometimes idle — beyond the SEPT-to-fastest greedy heuristic."
    ),
    verdict=(
        "Reproduced: greedy is exactly optimal for identical unweighted "
        "jobs but strictly loses on weighted heterogeneous instances; "
        "values are monotone in machine speed."
    ),
    defaults={},
    checks={
        "greedy_optimal_identical": lambda m: m["greedy_identical_gap"] < 1e-9,
        "greedy_loses_weighted": lambda m: m["greedy_weighted_ratio"] > 1.01,
        "monotone_in_speed": lambda m: m["speedup_ratio"] < 1.0,
    },
    tags=("batch", "exact", "uniform-machines"),
)
def simulate_e18(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E18: Uniform machines: threshold structure beyond naive greedy.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch.uniform_machines import (
        greedy_assignment,
        uniform_flowtime_dp,
        uniform_policy_flowtime_dp,
    )

    # The study instances are fixed; the scenario is fully deterministic.
    rates_id = np.array([1.0, 1.0, 1.0])
    speeds = np.array([1.0, 0.15])
    opt_id = uniform_flowtime_dp(rates_id, speeds)
    greedy_id = uniform_policy_flowtime_dp(
        rates_id, speeds, greedy_assignment(rates_id, speeds)
    )

    rates_w = np.array([1.4950, 0.3967, 0.2793, 4.1037])
    speeds_w = np.array([0.9171, 0.6263])
    weights = np.array([3.6745, 2.7638, 4.6819, 4.0977])
    opt_w = uniform_flowtime_dp(rates_w, speeds_w, weights=weights)
    greedy_w = uniform_policy_flowtime_dp(
        rates_w, speeds_w, greedy_assignment(rates_w, speeds_w), weights=weights
    )
    opt_faster = uniform_flowtime_dp(rates_id, np.array([1.0, 0.6]))
    return {
        "greedy_identical_gap": float(greedy_id / opt_id - 1.0),
        "greedy_weighted_ratio": float(greedy_w / opt_w),
        "speedup_ratio": float(opt_faster / opt_id),
    }


# ---------------------------------------------------------------------------
# vectorized kernels
# ---------------------------------------------------------------------------


@PACK.kernel(
    "E1",
    mode="batched",
    note="brute force over all n! sequences evaluated as one (reps, perms, "
    "jobs) cumsum instead of per-permutation Python loops",
)
def batch_e1(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E1: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e1`` on the same seeds.
    """
    from repro.batch.instances import DEFAULT_MEAN_RANGE, DEFAULT_WEIGHT_RANGE

    n_brute, n_jobs = int(params["n_brute"]), int(params["n_jobs"])
    N = len(seeds)
    raw = np.empty((N, 2 * (n_brute + n_jobs)))
    perms = np.empty((N, n_jobs), dtype=np.intp)
    for r, ss in enumerate(seeds):
        rng = np.random.default_rng(ss)
        # one block draw consumes the same doubles as the event path's
        # interleaved uniform(mean_range)/uniform(weight_range) calls
        raw[r] = rng.random(2 * (n_brute + n_jobs))
        perms[r] = rng.permutation(n_jobs)

    def instance(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lo_m, hi_m = DEFAULT_MEAN_RANGE
        lo_w, hi_w = DEFAULT_WEIGHT_RANGE
        drawn_means = lo_m + (hi_m - lo_m) * block[:, 0::2]
        weights = lo_w + (hi_w - lo_w) * block[:, 1::2]
        # Job.mean round-trips through the exponential rate: 1/(1/mean)
        means = 1.0 / (1.0 / drawn_means)
        return means, weights

    def wsept_orders(means: np.ndarray, weights: np.ndarray) -> np.ndarray:
        # stable argsort of -index == lexsort((arange, -index))
        return np.argsort(-(weights / means), axis=1, kind="stable")

    m_small, w_small = instance(raw[:, : 2 * n_brute])
    best = min_flowtime_over_permutations(m_small, w_small)
    wsept_small = sequence_flowtime_batch(
        m_small, w_small, wsept_orders(m_small, w_small)
    )
    gap = wsept_small / best - 1.0

    m_big, w_big = instance(raw[:, 2 * n_brute :])
    fifo_order = np.broadcast_to(np.arange(n_jobs, dtype=np.intp), (N, n_jobs))
    wsept = sequence_flowtime_batch(m_big, w_big, wsept_orders(m_big, w_big))
    fifo = sequence_flowtime_batch(m_big, w_big, fifo_order)
    rnd = sequence_flowtime_batch(m_big, w_big, perms)
    return _float_rows(
        {
            "brute_gap": gap,
            "wsept": wsept,
            "fifo": fifo,
            "random": rnd,
            "fifo_ratio": fifo / wsept,
            "random_ratio": rnd / wsept,
        },
        N,
    )


@PACK.kernel(
    "E2",
    mode="cached",
    note="the memoryless-job half of the study is fully deterministic and "
    "computed once for the whole batch; the random-SCV DHR half keeps its "
    "exact per-replication DPs",
)
def batch_e2(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``cached`` kernel for E2: hoists the replication-invariant work and evaluates it once for the batch;
    bit-for-bit equal to ``simulate_e2`` on the same seeds.
    """
    from repro.batch.sevcik import (
        DiscreteJob,
        GittinsJobIndex,
        discretize_distribution,
        evaluate_index_policy_dp,
        nonpreemptive_wsept_cost,
        preemptive_single_machine_mdp,
    )
    from repro.distributions import Exponential, HyperExponential

    quantum = float(params["quantum"])
    n_quanta = int(params["n_quanta"])
    lo, hi = params["scv_range"]

    mem = [
        DiscreteJob(
            id=j,
            pmf=discretize_distribution(Exponential.from_mean(mean), 0.5, n_quanta),
            weight=1.0,
        )
        for j, mean in enumerate((1.0, 2.0, 3.0))
    ]
    opt_mem, _ = preemptive_single_machine_mdp(mem)
    gittins_mem = evaluate_index_policy_dp(mem, GittinsJobIndex(mem))
    wsept_mem = nonpreemptive_wsept_cost(mem)
    mem_metrics = {
        "opt_mem": float(opt_mem),
        "gittins_mem_gap": float(abs(gittins_mem / opt_mem - 1.0)),
        "wsept_mem_premium": float(wsept_mem / opt_mem - 1.0),
    }

    rows = []
    for ss in seeds:
        rng = np.random.default_rng(ss)
        scvs = rng.uniform(lo, hi, size=3)
        dhr = [
            DiscreteJob(
                id=j,
                pmf=discretize_distribution(
                    HyperExponential.balanced_from_mean_scv(2.0, float(scv)),
                    quantum,
                    n_quanta,
                ),
                weight=1.0 + 0.3 * j,
            )
            for j, scv in enumerate(scvs)
        ]
        opt_dhr, _ = preemptive_single_machine_mdp(dhr)
        gittins_dhr = evaluate_index_policy_dp(dhr, GittinsJobIndex(dhr))
        wsept_dhr = nonpreemptive_wsept_cost(dhr)
        rows.append(
            {
                "opt_dhr": float(opt_dhr),
                "gittins_dhr_gap": float(abs(gittins_dhr / opt_dhr - 1.0)),
                "wsept_dhr_premium": float(wsept_dhr / opt_dhr - 1.0),
                **mem_metrics,
            }
        )
    return rows


def _uniform_rates(seeds: Seeds, params: Params) -> np.ndarray:
    lo, hi = params["rate_range"]
    n = int(params["n_jobs"])
    rates = np.empty((len(seeds), n))
    for r, ss in enumerate(seeds):
        rates[r] = np.random.default_rng(ss).uniform(lo, hi, size=n)
    return rates


@PACK.kernel(
    "E3",
    mode="batched",
    note="subset DP evaluated once over all replications (vector-valued "
    "states) plus a batched stochastic-order certification",
)
def batch_e3(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E3: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e3`` on the same seeds.
    """
    rates = _uniform_rates(seeds, params)
    m = int(params["m"])
    opt = subset_dp_batch(rates, m, objective="flowtime")
    sept = subset_dp_batch(rates, m, objective="flowtime", policy="sept")
    lept = subset_dp_batch(rates, m, objective="flowtime", policy="lept")
    ordered = exponential_family_st_ordered(rates)
    return _float_rows(
        {
            "opt": opt,
            "sept_gap": sept / opt - 1.0,
            "lept_ratio": lept / opt,
            "family_ordered": ordered.astype(float),
        },
        len(seeds),
    )


@PACK.kernel(
    "E4",
    mode="batched",
    note="makespan subset DP evaluated once over all replications",
)
def batch_e4(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E4: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e4`` on the same seeds.
    """
    rates = _uniform_rates(seeds, params)
    m = int(params["m"])
    opt = subset_dp_batch(rates, m, objective="makespan")
    lept = subset_dp_batch(rates, m, objective="makespan", policy="lept")
    sept = subset_dp_batch(rates, m, objective="makespan", policy="sept")
    return _float_rows(
        {
            "opt": opt,
            "lept_gap": lept / opt - 1.0,
            "sept_penalty": sept / opt - 1.0,
        },
        len(seeds),
    )


@PACK.kernel(
    "E6",
    mode="batched",
    note="the nested-instance optimal and WSEPT subset DPs run once per "
    "batch with vector-valued states instead of once per replication",
)
def batch_e6(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E6: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e6`` on the same seeds.
    """
    ns = [int(n) for n in params["ns"]]
    m = int(params["m"])
    N = len(seeds)
    n_max = max(ns)
    rates = np.empty((N, n_max))
    weights = np.empty((N, n_max))
    for r, ss in enumerate(seeds):
        rng = np.random.default_rng(ss)
        # exact_gap_sweep re-seeds from a derived integer
        inner = np.random.default_rng(int(rng.integers(0, 2**31 - 1)))
        rates[r] = inner.uniform(0.3, 3.0, size=n_max)
        weights[r] = inner.uniform(0.5, 2.0, size=n_max)

    opts, vals = [], []
    for n in ns:
        r, w = rates[:, :n], weights[:, :n]
        opts.append(subset_dp_batch(r, m, objective="flowtime", weights=w))
        vals.append(
            subset_dp_batch(
                r, m, objective="flowtime", weights=w, policy="index", priority=w * r
            )
        )
    gaps = [v - o for v, o in zip(vals, opts)]
    max_gap, min_gap = gaps[0], gaps[0]
    for g in gaps[1:]:
        max_gap = np.maximum(max_gap, g)
        min_gap = np.minimum(min_gap, g)
    return _float_rows(
        {
            "opt_growth": opts[-1] / opts[0],
            "max_abs_gap": max_gap,
            "min_abs_gap": min_gap,
            "last_rel_gap": gaps[-1] / opts[-1],
        },
        N,
    )


def _broadcast_deterministic(
    scenario_id: str, seeds: Seeds, params: Params
) -> list[dict[str, float]]:
    """For a ``simulate`` that never touches its seed, every replication
    is the same computation: run it once and replicate the row."""
    from repro.experiments.registry import get_scenario

    if not seeds:
        return []
    row = get_scenario(scenario_id).simulate(seeds[0], params)
    return [dict(row) for _ in seeds]


@PACK.kernel(
    "E5",
    mode="cached",
    note="the study instance is fixed and the enumeration exact — one "
    "evaluation serves every replication",
)
def batch_e5(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``cached`` kernel for E5: hoists the replication-invariant work and evaluates it once for the batch;
    bit-for-bit equal to ``simulate_e5`` on the same seeds.
    """
    return _broadcast_deterministic("E5", seeds, params)


@PACK.kernel(
    "E18",
    mode="cached",
    note="fixed study instances, fully deterministic DPs — one evaluation "
    "serves every replication",
)
def batch_e18(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``cached`` kernel for E18: hoists the replication-invariant work and evaluates it once for the batch;
    bit-for-bit equal to ``simulate_e18`` on the same seeds.
    """
    return _broadcast_deterministic("E18", seeds, params)


@PACK.kernel(
    "E16",
    mode="batched",
    note="every batch of trees is simulated in lockstep (one completion "
    "epoch per step across all replications); per-replication draws stay "
    "on their own generators in the event path's order",
)
def batch_e16(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E16: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e16`` on the same seeds.
    """
    from repro.batch import random_intree
    from repro.utils.rng import crn_generators

    m = int(params["m"])
    sizes = [int(n) for n in params["sizes"]]
    N = len(seeds)
    main_rngs = [np.random.default_rng(ss) for ss in seeds]
    children = [ss.spawn(len(sizes)) for ss in seeds]

    columns: dict[str, np.ndarray] = {}
    for si, n in enumerate(sizes):
        parents = np.empty((N, n), dtype=np.int64)
        levels = []
        lb = np.empty(N)
        for r in range(N):
            seed_int = int(main_rngs[r].integers(0, 2**31 - 1))
            tree = random_intree(n, seed_int)
            parents[r] = tree.parent
            lev = tree.levels()
            levels.append(lev)
            lb[r] = max(n / m, float(lev.max() + 1))
        hlf_rngs, rnd_rngs, policy_rngs = [], [], []
        for r in range(N):
            h, w = crn_generators(children[r][si], 2)
            hlf_rngs.append(h)
            rnd_rngs.append(w)
            policy_rngs.append(np.random.default_rng(children[r][si].spawn(1)[0]))

        def hlf_select(r: int, ids: np.ndarray, m_: int) -> np.ndarray:
            lev = levels[r][ids]
            # stable argsort of -level == sorted(ids, key=(-level, id))
            return ids[np.argsort(-lev, kind="stable")[:m_]]

        def random_select(r: int, ids: np.ndarray, m_: int) -> np.ndarray:
            k = min(m_, len(ids))
            idx = policy_rngs[r].choice(len(ids), size=k, replace=False)
            return ids[idx]

        hlf = lockstep_intree_makespans(parents, m, 1.0, hlf_select, hlf_rngs)
        rnd = lockstep_intree_makespans(parents, m, 1.0, random_select, rnd_rngs)
        columns[f"hlf_ratio_n{n}"] = hlf / lb
        columns[f"random_ratio_n{n}"] = rnd / lb
    columns["hlf_ratio_small"] = columns[f"hlf_ratio_n{sizes[0]}"]
    columns["hlf_ratio_large"] = columns[f"hlf_ratio_n{sizes[-1]}"]
    columns["random_ratio_large"] = columns[f"random_ratio_n{sizes[-1]}"]
    return _float_rows(columns, N)


@PACK.kernel(
    "E17",
    mode="batched",
    note="the four CRN sequence evaluations run as batched (reps,) "
    "completion recurrences; the deterministic Johnson limit is computed "
    "once for the whole batch",
)
def batch_e17(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E17: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e17`` on the same seeds.
    """
    from repro.batch.flowshop import (
        johnson_order_deterministic,
        simulate_flowshop,
        talwar_order,
    )
    from repro.experiments.scenarios import _E17_RATES, _E17_RUNNER_UP

    rates = np.array(_E17_RATES)
    order = talwar_order(rates)
    N = len(seeds)
    P = np.empty((N,) + rates.shape)
    for r, ss in enumerate(seeds):
        P[r] = np.random.default_rng(ss).exponential(1.0 / rates)

    talwar_mk = flowshop_makespan_batch(P, order)
    runner_up_mk = flowshop_makespan_batch(P, list(_E17_RUNNER_UP))
    reverse_mk = flowshop_makespan_batch(P, order[::-1])
    blocked_mk = flowshop_makespan_batch(P, order, blocking=True)

    times = 1.0 / rates
    j_order = johnson_order_deterministic(times)
    mk_j = simulate_flowshop(times, j_order)[0]
    best_det = min(
        simulate_flowshop(times, list(p))[0]
        for p in itertools.permutations(range(len(times)))
    )
    return _float_rows(
        {
            "talwar_makespan": talwar_mk,
            "runner_up_ratio": runner_up_mk / talwar_mk,
            "reverse_ratio": reverse_mk / talwar_mk,
            "blocked_minus_talwar": blocked_mk - talwar_mk,
            "johnson_gap": float(mk_j / best_det - 1.0),
        },
        N,
    )
