"""Multiclass queueing-network scenario pack (E10–E14, A2, A3).

The cµ rule and achievable-region polytope for the multiclass M/G/1,
Klimov's feedback index, heavy-traffic asymptotic optimality on parallel
servers, Rybko–Stolyar instability, fluid-model policy ranking, and the
M/M/1 / achievable-region LP ablation anchors — simulated through the
event-driven network engine and its lockstep flat-network kernels.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping, Sequence

import numpy as np

from repro.experiments.packs import ScenarioPack
from repro.utils.rng import crn_generators
from repro.experiments.packs._shared import _crn_batches, _float_rows
from repro.sim.vectorized import (
    lockstep_network_simulations,
)

Params = Mapping[str, Any]
Seeds = Sequence[np.random.SeedSequence]

_POS = {"type": "number", "exclusiveMinimum": 0}

_SCHEMAS = {
    "E10": {
        "type": "object",
        "properties": {"horizon": _POS, "conservation_rtol": _POS},
        "additionalProperties": False,
    },
    "E11": {
        "type": "object",
        "properties": {"horizon": _POS},
        "additionalProperties": False,
    },
    "E12": {
        "type": "object",
        "properties": {
            "mu": {"type": "array", "items": _POS, "minItems": 1},
            "costs": {"type": "array", "items": _POS, "minItems": 1},
            "m": {"type": "integer", "minimum": 1},
            "rhos": {
                "type": "array",
                "items": {
                    "type": "number",
                    "exclusiveMinimum": 0,
                    "exclusiveMaximum": 1,
                },
                "minItems": 1,
            },
            "horizon": _POS,
        },
        "additionalProperties": False,
    },
    "E13": {
        "type": "object",
        "properties": {
            "horizon": _POS, "fluid_dt": _POS, "fluid_horizon": _POS,
        },
        "additionalProperties": False,
    },
    "E14": {
        "type": "object",
        "properties": {
            "horizon": _POS, "fluid_dt": _POS, "fluid_horizon": _POS,
        },
        "additionalProperties": False,
    },
    "A2": {
        "type": "object",
        "properties": {
            "rho": {
                "type": "number", "exclusiveMinimum": 0, "exclusiveMaximum": 1,
            },
            "horizon": _POS,
        },
        "additionalProperties": False,
    },
    "A3": {
        "type": "object",
        "properties": {"n_classes": {"type": "integer", "minimum": 1}},
        "additionalProperties": False,
    },
}

PACK = ScenarioPack(
    name="queueing-networks",
    version="1.0.0",
    docs="docs/ARCHITECTURE.md#scenario-packs",
    schemas=_SCHEMAS,
)


_E10_ARRIVAL = (0.2, 0.25, 0.15)
_E10_COSTS = (1.0, 2.5, 1.8)


def _e10_services():
    from repro.distributions import Erlang, Exponential, HyperExponential

    return [
        Exponential(1.2),
        Erlang(2, 2.0),
        HyperExponential.balanced_from_mean_scv(0.9, 3.0),
    ]


@PACK.scenario(
    "E10",
    title="cµ rule optimality for the multiclass M/G/1",
    claim=(
        "The cµ rule is optimal for the multiclass M/G/1 [15]; the "
        "achievable region is a polytope whose vertices are the strict "
        "priority rules [14, 17], so simulation, Cobham's formulas and the "
        "conservation laws must agree."
    ),
    verdict=(
        "Reproduced: cµ selects the best priority order; simulation matches "
        "Cobham's formulas; simulated waits satisfy strong conservation."
    ),
    defaults={"horizon": 8000.0, "conservation_rtol": 0.15},
    checks={
        "cmu_is_best_vertex": lambda m: m["cmu_picks_best"] == 1.0,
        "sim_matches_cobham": lambda m: abs(m["cmu_sim_ratio"] - 1.0) < 0.1,
        "conservation_holds": lambda m: m["conservation_ok"] >= 0.5,
        "polytope_has_all_vertices": lambda m: m["n_vertices"] == 6.0,
    },
    tags=("queueing", "simulation", "conservation"),
)
def simulate_e10(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E10: cµ rule optimality for the multiclass M/G/1.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.core.conservation import (
        check_strong_conservation,
        performance_polytope_vertices,
    )
    from repro.queueing import optimal_average_cost, order_average_cost, simulate_network
    from repro.queueing.network import ClassConfig, QueueingNetwork, StationConfig

    services = _e10_services()
    arrival, costs = list(_E10_ARRIVAL), list(_E10_COSTS)
    horizon = float(params["horizon"])

    opt_cost, cmu = optimal_average_cost(arrival, services, costs)
    exact = {
        perm: order_average_cost(arrival, services, costs, perm)
        for perm in itertools.permutations(range(3))
    }
    best_perm = min(exact, key=exact.get)
    worst_perm = max(exact, key=exact.get)

    # CRN: both simulated orders replay the identical event stream.
    sims = {}
    for perm, rng in zip((tuple(cmu), worst_perm), crn_generators(ss, 2)):
        net = QueueingNetwork(
            [
                ClassConfig(0, services[j], arrival_rate=arrival[j], cost=costs[j])
                for j in range(3)
            ],
            [StationConfig(discipline="priority", priority=perm)],
        )
        sims[perm] = simulate_network(net, horizon, rng)

    ms = np.array([s.mean for s in services])
    m2 = np.array([s.second_moment for s in services])
    conserved = check_strong_conservation(
        arrival, ms, m2, sims[tuple(cmu)].mean_waits,
        rtol=float(params["conservation_rtol"]),
    )
    return {
        "opt_cost": float(opt_cost),
        "cmu_picks_best": float(tuple(cmu) == best_perm),
        "cmu_sim_ratio": float(sims[tuple(cmu)].cost_rate / opt_cost),
        "worst_exact_ratio": float(exact[worst_perm] / opt_cost),
        "worst_sim_ratio": float(sims[worst_perm].cost_rate / opt_cost),
        "conservation_ok": float(conserved),
        "n_vertices": float(len(performance_polytope_vertices(arrival, ms, m2))),
    }


_E11_LAM = (0.25, 0.1, 0.0)
_E11_MUS = (2.0, 1.5, 1.0)
_E11_COSTS = (1.0, 3.0, 2.0)
_E11_FEEDBACK = (
    (0.0, 0.3, 0.2),
    (0.0, 0.0, 0.4),
    (0.1, 0.0, 0.0),
)


@PACK.scenario(
    "E11",
    title="Klimov's index rule for the M/G/1 with feedback",
    claim=(
        "Klimov's index rule is optimal for the M/G/1 with Markovian "
        "feedback [24] and reduces to cµ without feedback."
    ),
    verdict=(
        "Reproduced: Klimov's order is best among all simulated priority "
        "orders (within Monte-Carlo noise) and the no-feedback reduction "
        "is exact."
    ),
    defaults={"horizon": 6000.0},
    checks={
        "klimov_best_order": lambda m: m["klimov_vs_best"] <= 1.05,
        "reduces_to_cmu": lambda m: m["reduction_exact"] == 1.0,
    },
    tags=("queueing", "simulation", "feedback"),
)
def simulate_e11(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E11: Klimov's index rule for the M/G/1 with feedback.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.distributions import Exponential
    from repro.queueing.klimov import klimov_indices, klimov_order
    from repro.queueing.mg1 import cmu_order
    from repro.queueing.network import (
        ClassConfig,
        QueueingNetwork,
        StationConfig,
        simulate_network,
    )

    lam, mus, costs = list(_E11_LAM), list(_E11_MUS), list(_E11_COSTS)
    feedback = np.array(_E11_FEEDBACK)
    means = [1.0 / m for m in mus]
    horizon = float(params["horizon"])

    k_order = tuple(klimov_order(costs, means, feedback))
    naive = tuple(cmu_order(costs, means))
    perms = list(itertools.permutations(range(3)))
    # CRN: every priority order replays the same arrival/service stream.
    results = {}
    for perm, rng in zip(perms, crn_generators(ss, len(perms))):
        net = QueueingNetwork(
            [
                ClassConfig(0, Exponential(mus[j]), arrival_rate=lam[j], cost=costs[j])
                for j in range(3)
            ],
            [StationConfig(discipline="priority", priority=perm)],
            routing=feedback,
        )
        results[perm] = simulate_network(net, horizon, rng, warmup_fraction=0.2).cost_rate
    best = min(results.values())
    reduce_ok = np.allclose(
        klimov_indices(costs, means, np.zeros((3, 3))),
        np.asarray(costs) / np.asarray(means),
    )
    return {
        "klimov_cost": float(results[k_order]),
        "best_cost": float(best),
        "klimov_vs_best": float(results[k_order] / best),
        "naive_cmu_ratio": float(results[naive] / results[k_order]),
        "reduction_exact": float(reduce_ok),
    }


@PACK.scenario(
    "E12",
    title="cµ on parallel servers: asymptotic optimality in heavy traffic",
    claim=(
        "On parallel servers the cµ/Klimov heuristic is asymptotically "
        "optimal in heavy traffic (Glazebrook–Niño-Mora [22]): its gap to "
        "the pooled lower bound vanishes as rho -> 1."
    ),
    verdict=(
        "Reproduced: the cost ratio to the pooled preemptive-cµ lower "
        "bound decreases towards 1 as rho -> 1."
    ),
    defaults={
        "mu": (4.0, 1.0),
        "costs": (1.0, 2.0),
        "m": 2,
        "rhos": (0.6, 0.9, 0.95),
        "horizon": 12000.0,
    },
    checks={
        "bound_respected": lambda m: m["min_ratio"] > 0.9,
        # a single-rho grid (e.g. one point of a `repro-sweep` rho sweep,
        # where the decrease is asserted *across* sweep points) has no
        # decrease to show — the check only claims it for real grids
        "ratio_decreases": lambda m: m["n_rhos"] < 2
        or m["last_ratio"] < m["first_ratio"],
        # at the default horizon the rho=0.95 point is still transient-
        # biased; raise `horizon` for the sharper 1.1-style threshold.
        # Tightness is only claimed when the grid actually reaches heavy
        # traffic (top rho >= 0.95)
        "heavy_traffic_tight": lambda m: m["top_rho"] < 0.95
        or m["last_ratio"] < 1.2,
    },
    tags=("queueing", "simulation", "heavy-traffic"),
)
def simulate_e12(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E12: cµ on parallel servers: asymptotic optimality in heavy traffic.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.queueing import parallel_server_experiment

    rng = np.random.default_rng(ss)
    pts = parallel_server_experiment(
        list(params["mu"]),
        list(params["costs"]),
        int(params["m"]),
        list(params["rhos"]),
        rng,
        horizon=float(params["horizon"]),
    )
    ratios = [p.ratio for p in pts]
    return {
        "first_ratio": float(ratios[0]),
        "last_ratio": float(ratios[-1]),
        "min_ratio": float(min(ratios)),
        "last_bound": float(pts[-1].pooled_bound),
        "last_cost": float(pts[-1].cmu_cost),
        # deterministic grid descriptors, so the shape checks can tell a
        # real rho grid from a degenerate single-rho sweep point
        "n_rhos": float(len(pts)),
        "top_rho": float(pts[-1].rho),
    }


@PACK.scenario(
    "E13",
    title="Rybko–Stolyar: priority instability under nominal underload",
    claim=(
        "Stability is subtle in multiclass networks [9]: a priority policy "
        "can diverge with every station underloaded (Rybko–Stolyar); the "
        "naive fluid model misses it and the virtual-station augmented "
        "fluid catches it."
    ),
    verdict=(
        "Reproduced: exit-priority diverges at virtual load 1.2 while FIFO "
        "and the virtual-load-0.8 variant stay stable; only the augmented "
        "fluid model predicts the instability."
    ),
    defaults={"horizon": 2000.0, "fluid_dt": 0.01, "fluid_horizon": 80.0},
    checks={
        "priority_diverges": lambda m: m["instability_ratio"] > 10.0,
        "safe_variant_stable": lambda m: m["safe_backlog"] < 100.0,
        "naive_fluid_blind": lambda m: m["naive_fluid_stable"] == 1.0,
        "augmented_fluid_sees_it": lambda m: m["augmented_fluid_stable"] == 0.0,
    },
    tags=("queueing", "simulation", "stability"),
)
def simulate_e13(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E13: Rybko–Stolyar: priority instability under nominal underload.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.queueing import (
        FluidModel,
        is_fluid_stable,
        rybko_stolyar_network,
        simulate_network,
        virtual_station_load,
    )

    horizon = float(params["horizon"])
    dt, fh = float(params["fluid_dt"]), float(params["fluid_horizon"])
    bad = rybko_stolyar_network(1.0, 0.1, 0.6, priority_to_exit=True)
    fifo = rybko_stolyar_network(1.0, 0.1, 0.6, priority_to_exit=False)
    safe = rybko_stolyar_network(1.0, 0.1, 0.4, priority_to_exit=True)

    rngs = np.random.default_rng(ss).spawn(3)
    res_bad = simulate_network(bad, horizon, rngs[0])
    res_fifo = simulate_network(fifo, horizon, rngs[1])
    res_safe = simulate_network(safe, horizon, rngs[2])

    naive_stable = is_fluid_stable(FluidModel.from_network(bad), horizon=fh, dt=dt)
    aug_stable = is_fluid_stable(
        FluidModel.from_network(bad, virtual_stations=((1, 3),)), horizon=fh, dt=dt
    )
    return {
        "bad_backlog": float(res_bad.final_backlog),
        "fifo_backlog": float(res_fifo.final_backlog),
        "safe_backlog": float(res_safe.final_backlog),
        "instability_ratio": float(
            res_bad.final_backlog / max(res_fifo.final_backlog, 1.0)
        ),
        "virtual_load_bad": float(virtual_station_load(bad)),
        "naive_fluid_stable": float(naive_stable),
        "augmented_fluid_stable": float(aug_stable),
    }


def _e14_network(priority_a, priority_b):
    from repro.distributions import Exponential
    from repro.queueing.network import ClassConfig, QueueingNetwork, StationConfig

    classes = [
        ClassConfig(0, Exponential(3.0), arrival_rate=0.8, cost=1.0),
        ClassConfig(1, Exponential(2.0), arrival_rate=0.0, cost=2.0),
        ClassConfig(0, Exponential(2.5), arrival_rate=0.0, cost=4.0),
    ]
    routing = np.zeros((3, 3))
    routing[0, 1] = 1.0
    routing[1, 2] = 1.0
    return QueueingNetwork(
        classes,
        [
            StationConfig(discipline="priority", priority=tuple(priority_a)),
            StationConfig(discipline="priority", priority=tuple(priority_b)),
        ],
        routing,
    )


@PACK.scenario(
    "E14",
    title="Fluid-model heuristics rank MQN policies correctly",
    claim=(
        "Fluid-model heuristics guide good multiclass-queueing-network "
        "policies (Chen–Yao [11], Atkins–Chen [3]): fluid drain analysis "
        "predicts relative policy quality in the stochastic network."
    ),
    verdict=(
        "Reproduced: fluid drain analysis and stochastic simulation rank "
        "the candidate policies consistently."
    ),
    defaults={"horizon": 6000.0, "fluid_dt": 0.01, "fluid_horizon": 120.0},
    checks={
        "both_drain_finite": lambda m: m["drain_exit_first"] < np.inf
        and m["drain_entry_first"] < np.inf,
        "fluid_choice_wins_sim": lambda m: m["exit_vs_entry_cost"] <= 1.02,
    },
    tags=("queueing", "simulation", "fluid"),
)
def simulate_e14(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E14: Fluid-model heuristics rank MQN policies correctly.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.queueing import FluidModel, fluid_drain_time, simulate_network

    horizon = float(params["horizon"])
    dt, fh = float(params["fluid_dt"]), float(params["fluid_horizon"])
    nets = {
        "exit_first": _e14_network((2, 0), (1,)),
        "entry_first": _e14_network((0, 2), (1,)),
    }
    drains, costs = {}, {}
    # CRN across the two candidate policies.
    for (name, net), rng in zip(nets.items(), crn_generators(ss, len(nets))):
        fm = FluidModel.from_network(net)
        drains[name] = fluid_drain_time(fm, [1, 1, 1], horizon=fh, dt=dt)
        costs[name] = simulate_network(net, horizon, rng).cost_rate
    return {
        "drain_exit_first": float(drains["exit_first"]),
        "drain_entry_first": float(drains["entry_first"]),
        "cost_exit_first": float(costs["exit_first"]),
        "cost_entry_first": float(costs["entry_first"]),
        "exit_vs_entry_cost": float(costs["exit_first"] / costs["entry_first"]),
    }


@PACK.scenario(
    "A2",
    title="Ablation: event-engine M/M/1 accuracy anchor",
    claim=(
        "Ablation: the discrete-event engine must reproduce the M/M/1 "
        "closed forms (L, Wq) within Monte-Carlo tolerance — the accuracy "
        "anchor under every queueing experiment."
    ),
    verdict="Simulator matches closed forms within Monte-Carlo tolerance.",
    defaults={"rho": 0.7, "horizon": 20000.0},
    checks={
        "queue_length_matches": lambda m: m["L_abs_rel_err"] < 0.1,
        "waiting_time_matches": lambda m: m["Wq_abs_rel_err"] < 0.1,
    },
    tags=("sim", "simulation", "ablation"),
)
def simulate_a2(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of A2: Ablation: event-engine M/M/1 accuracy anchor.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.distributions import Exponential
    from repro.queueing.mg1 import mm1_metrics
    from repro.queueing.network import (
        ClassConfig,
        QueueingNetwork,
        StationConfig,
        simulate_network,
    )

    rho = float(params["rho"])
    net = QueueingNetwork(
        [ClassConfig(0, Exponential(1.0), arrival_rate=rho)],
        [StationConfig(discipline="priority", priority=(0,))],
    )
    res = simulate_network(
        net, float(params["horizon"]), np.random.default_rng(ss)
    )
    theory = mm1_metrics(rho, 1.0)
    return {
        "L_sim": float(res.mean_queue_lengths[0]),
        "Wq_sim": float(res.mean_waits[0]),
        "L_abs_rel_err": float(abs(res.mean_queue_lengths[0] / theory["L"] - 1.0)),
        "Wq_abs_rel_err": float(abs(res.mean_waits[0] / theory["Wq"] - 1.0)),
    }


@PACK.scenario(
    "A3",
    title="Ablation: achievable-region LP route to the cµ rule",
    claim=(
        "Ablation: the achievable-region LP over the conservation-law "
        "polytope must land on the same priority rule and value as the "
        "interchange-argument/Cobham derivation of cµ."
    ),
    verdict=(
        "The LP reproduces the interchange-argument rule and value exactly "
        "at every class count tested."
    ),
    defaults={"n_classes": 5},
    checks={
        "lp_value_matches_cobham": lambda m: m["cost_rel_gap"] < 1e-7,
        "lp_order_matches_cmu": lambda m: m["orders_match"] == 1.0,
    },
    tags=("core", "exact", "ablation"),
)
def simulate_a3(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of A3: Ablation: achievable-region LP route to the cµ rule.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.core import achievable_region_lp
    from repro.distributions import Exponential
    from repro.queueing.mg1 import optimal_average_cost

    rng = np.random.default_rng(ss)
    n = int(params["n_classes"])
    lam = rng.uniform(0.02, 0.8 / n, size=n)
    svcs = [Exponential(rng.uniform(0.8, 3.0)) for _ in range(n)]
    ms = [s.mean for s in svcs]
    m2 = [s.second_moment for s in svcs]
    c = rng.uniform(0.3, 3.0, size=n)
    sol = achievable_region_lp(lam, ms, m2, c)
    exact, order = optimal_average_cost(lam, svcs, c)
    return {
        "lp_cost": float(sol.optimal_cost),
        "cost_rel_gap": float(abs(sol.optimal_cost / exact - 1.0)),
        "orders_match": float(list(sol.priority_order) == list(order)),
    }


# ---------------------------------------------------------------------------
# vectorized kernels
# ---------------------------------------------------------------------------


@PACK.kernel(
    "E10",
    mode="lockstep",
    note="the cµ/Cobham/polytope analysis is deterministic and hoisted out "
    "of the replication loop; the CRN network simulations run through the "
    "flat lockstep engine",
)
def batch_e10(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E10: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e10`` on the same seeds.
    """
    from repro.core.conservation import (
        check_strong_conservation,
        performance_polytope_vertices,
    )
    from repro.experiments.scenarios import _E10_ARRIVAL, _E10_COSTS, _e10_services
    from repro.queueing import optimal_average_cost, order_average_cost
    from repro.queueing.network import ClassConfig, QueueingNetwork, StationConfig

    services = _e10_services()
    arrival, costs = list(_E10_ARRIVAL), list(_E10_COSTS)
    horizon = float(params["horizon"])

    opt_cost, cmu = optimal_average_cost(arrival, services, costs)
    exact = {
        perm: order_average_cost(arrival, services, costs, perm)
        for perm in itertools.permutations(range(3))
    }
    best_perm = min(exact, key=exact.get)
    worst_perm = max(exact, key=exact.get)
    ms = np.array([s.mean for s in services])
    m2 = np.array([s.second_moment for s in services])
    n_vertices = float(len(performance_polytope_vertices(arrival, ms, m2)))
    rtol = float(params["conservation_rtol"])

    case_perms = (tuple(cmu), worst_perm)
    sims = {}
    for perm, rngs in zip(case_perms, _crn_batches(seeds, len(case_perms))):
        net = QueueingNetwork(
            [
                ClassConfig(0, services[j], arrival_rate=arrival[j], cost=costs[j])
                for j in range(3)
            ],
            [StationConfig(discipline="priority", priority=perm)],
        )
        sims[perm] = lockstep_network_simulations(net, horizon, rngs)
    rows = []
    for r in range(len(seeds)):
        conserved = check_strong_conservation(
            arrival, ms, m2, sims[tuple(cmu)][r].mean_waits, rtol=rtol
        )
        rows.append(
            {
                "opt_cost": float(opt_cost),
                "cmu_picks_best": float(tuple(cmu) == best_perm),
                "cmu_sim_ratio": float(sims[tuple(cmu)][r].cost_rate / opt_cost),
                "worst_exact_ratio": float(exact[worst_perm] / opt_cost),
                "worst_sim_ratio": float(sims[worst_perm][r].cost_rate / opt_cost),
                "conservation_ok": float(conserved),
                "n_vertices": n_vertices,
            }
        )
    return rows


@PACK.kernel(
    "E11",
    mode="lockstep",
    note="Klimov/cµ index analysis and network construction hoisted out of "
    "the replication loop; the six CRN simulations run through the flat "
    "lockstep engine",
)
def batch_e11(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E11: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e11`` on the same seeds.
    """
    from repro.distributions import Exponential
    from repro.experiments.scenarios import (
        _E11_COSTS,
        _E11_FEEDBACK,
        _E11_LAM,
        _E11_MUS,
    )
    from repro.queueing.klimov import klimov_indices, klimov_order
    from repro.queueing.mg1 import cmu_order
    from repro.queueing.network import ClassConfig, QueueingNetwork, StationConfig

    lam, mus, costs = list(_E11_LAM), list(_E11_MUS), list(_E11_COSTS)
    feedback = np.array(_E11_FEEDBACK)
    means = [1.0 / m for m in mus]
    horizon = float(params["horizon"])

    k_order = tuple(klimov_order(costs, means, feedback))
    naive = tuple(cmu_order(costs, means))
    perms = list(itertools.permutations(range(3)))
    reduce_ok = np.allclose(
        klimov_indices(costs, means, np.zeros((3, 3))),
        np.asarray(costs) / np.asarray(means),
    )
    results = {}
    for perm, rngs in zip(perms, _crn_batches(seeds, len(perms))):
        net = QueueingNetwork(
            [
                ClassConfig(0, Exponential(mus[j]), arrival_rate=lam[j], cost=costs[j])
                for j in range(3)
            ],
            [StationConfig(discipline="priority", priority=perm)],
            routing=feedback,
        )
        results[perm] = [
            res.cost_rate
            for res in lockstep_network_simulations(
                net, horizon, rngs, warmup_fraction=0.2
            )
        ]
    rows = []
    for r in range(len(seeds)):
        per_perm = {perm: results[perm][r] for perm in perms}
        best = min(per_perm.values())
        rows.append(
            {
                "klimov_cost": float(per_perm[k_order]),
                "best_cost": float(best),
                "klimov_vs_best": float(per_perm[k_order] / best),
                "naive_cmu_ratio": float(per_perm[naive] / per_perm[k_order]),
                "reduction_exact": float(reduce_ok),
            }
        )
    return rows


@PACK.kernel(
    "E12",
    mode="lockstep",
    note="the pooled preemptive-cµ lower bound and the M/M/m network are "
    "built once per sweep point; every replication's rho sweep advances "
    "through the flat lockstep engine on its own carried-over stream",
)
def batch_e12(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E12: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e12`` on the same seeds.
    """
    from repro.queueing.heavy_traffic import build_mmk, pooled_lower_bound

    mu = np.asarray(list(params["mu"]), dtype=float)
    c = np.asarray(list(params["costs"]), dtype=float)
    m = int(params["m"])
    rhos = [float(r) for r in params["rhos"]]
    horizon = float(params["horizon"])
    n = mu.size
    mix = np.full(n, 1.0 / n)
    rho0 = min(rhos)
    N = len(seeds)

    # each replication's sweep reuses one generator across the rho points,
    # exactly like parallel_server_experiment
    rngs = [np.random.default_rng(ss) for ss in seeds]
    ratios = np.empty((len(rhos), N))
    bounds = np.empty(len(rhos))
    costs_sim = np.empty((len(rhos), N))
    for i, rho in enumerate(rhos):
        if not 0 < rho < 1:
            raise ValueError("rho values must be in (0, 1)")
        lam = rho * m * mix * mu
        net = build_mmk(lam, mu, c, m)
        h = horizon * (1.0 - rho0) / (1.0 - rho)
        results = lockstep_network_simulations(net, h, rngs, warmup_fraction=0.2)
        bounds[i] = pooled_lower_bound(lam, mu, c, m)
        for r, res in enumerate(results):
            costs_sim[i, r] = res.cost_rate
            ratios[i, r] = res.cost_rate / bounds[i]
    min_ratio = ratios[0].copy()
    for i in range(1, len(rhos)):
        min_ratio = np.minimum(min_ratio, ratios[i])
    return _float_rows(
        {
            "first_ratio": ratios[0],
            "last_ratio": ratios[-1],
            "min_ratio": min_ratio,
            "last_bound": float(bounds[-1]),
            "last_cost": costs_sim[-1],
            "n_rhos": float(len(rhos)),
            "top_rho": float(rhos[-1]),
        },
        N,
    )


@PACK.kernel(
    "E13",
    mode="lockstep",
    note="both deterministic fluid-stability integrations and the three "
    "network constructions are hoisted out of the replication loop; the "
    "stochastic sample paths run through the flat lockstep engine",
)
def batch_e13(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E13: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e13`` on the same seeds.
    """
    from repro.queueing import (
        FluidModel,
        is_fluid_stable,
        rybko_stolyar_network,
        virtual_station_load,
    )

    horizon = float(params["horizon"])
    dt, fh = float(params["fluid_dt"]), float(params["fluid_horizon"])
    bad = rybko_stolyar_network(1.0, 0.1, 0.6, priority_to_exit=True)
    fifo = rybko_stolyar_network(1.0, 0.1, 0.6, priority_to_exit=False)
    safe = rybko_stolyar_network(1.0, 0.1, 0.4, priority_to_exit=True)

    spawned = [np.random.default_rng(ss).spawn(3) for ss in seeds]
    res_bad = lockstep_network_simulations(bad, horizon, [g[0] for g in spawned])
    res_fifo = lockstep_network_simulations(fifo, horizon, [g[1] for g in spawned])
    res_safe = lockstep_network_simulations(safe, horizon, [g[2] for g in spawned])

    naive_stable = float(is_fluid_stable(FluidModel.from_network(bad), horizon=fh, dt=dt))
    aug_stable = float(
        is_fluid_stable(
            FluidModel.from_network(bad, virtual_stations=((1, 3),)), horizon=fh, dt=dt
        )
    )
    v_load = float(virtual_station_load(bad))
    rows = []
    for r in range(len(seeds)):
        rows.append(
            {
                "bad_backlog": float(res_bad[r].final_backlog),
                "fifo_backlog": float(res_fifo[r].final_backlog),
                "safe_backlog": float(res_safe[r].final_backlog),
                "instability_ratio": float(
                    res_bad[r].final_backlog / max(res_fifo[r].final_backlog, 1.0)
                ),
                "virtual_load_bad": v_load,
                "naive_fluid_stable": naive_stable,
                "augmented_fluid_stable": aug_stable,
            }
        )
    return rows


@PACK.kernel(
    "E14",
    mode="lockstep",
    note="the deterministic fluid drain integrations are computed once; "
    "the CRN policy comparison runs through the flat lockstep engine",
)
def batch_e14(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E14: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e14`` on the same seeds.
    """
    from repro.experiments.scenarios import _e14_network
    from repro.queueing import FluidModel, fluid_drain_time

    horizon = float(params["horizon"])
    dt, fh = float(params["fluid_dt"]), float(params["fluid_horizon"])
    nets = {
        "exit_first": _e14_network((2, 0), (1,)),
        "entry_first": _e14_network((0, 2), (1,)),
    }
    drains = {
        name: float(fluid_drain_time(FluidModel.from_network(net), [1, 1, 1], horizon=fh, dt=dt))
        for name, net in nets.items()
    }
    costs = {}
    for (name, net), rngs in zip(nets.items(), _crn_batches(seeds, len(nets))):
        costs[name] = [
            res.cost_rate for res in lockstep_network_simulations(net, horizon, rngs)
        ]
    rows = []
    for r in range(len(seeds)):
        rows.append(
            {
                "drain_exit_first": drains["exit_first"],
                "drain_entry_first": drains["entry_first"],
                "cost_exit_first": float(costs["exit_first"][r]),
                "cost_entry_first": float(costs["entry_first"][r]),
                "exit_vs_entry_cost": float(
                    costs["exit_first"][r] / costs["entry_first"][r]
                ),
            }
        )
    return rows


@PACK.kernel(
    "A2",
    mode="lockstep",
    note="the M/M/1 closed forms are computed once; the sample paths run "
    "through the flat lockstep engine",
)
def batch_a2(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for A2: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_a2`` on the same seeds.
    """
    from repro.distributions import Exponential
    from repro.queueing.mg1 import mm1_metrics
    from repro.queueing.network import ClassConfig, QueueingNetwork, StationConfig

    rho = float(params["rho"])
    horizon = float(params["horizon"])
    net = QueueingNetwork(
        [ClassConfig(0, Exponential(1.0), arrival_rate=rho)],
        [StationConfig(discipline="priority", priority=(0,))],
    )
    theory = mm1_metrics(rho, 1.0)
    results = lockstep_network_simulations(
        net, horizon, [np.random.default_rng(ss) for ss in seeds]
    )
    rows = []
    for res in results:
        rows.append(
            {
                "L_sim": float(res.mean_queue_lengths[0]),
                "Wq_sim": float(res.mean_waits[0]),
                "L_abs_rel_err": float(
                    abs(res.mean_queue_lengths[0] / theory["L"] - 1.0)
                ),
                "Wq_abs_rel_err": float(abs(res.mean_waits[0] / theory["Wq"] - 1.0)),
            }
        )
    return rows


@PACK.kernel(
    "A3",
    mode="batched",
    note="the polymatroid constraint assembly and the 120-permutation "
    "Cobham vertex scan are batched across replications; each "
    "replication's LP keeps its own exact HiGHS solve",
)
def batch_a3(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for A3: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_a3`` on the same seeds.
    """
    from scipy.optimize import linprog

    from repro.distributions import Exponential
    from repro.queueing.mg1 import optimal_average_cost

    n = int(params["n_classes"])
    N = len(seeds)
    lam = np.empty((N, n))
    mus = np.empty((N, n))
    c = np.empty((N, n))
    for r, ss in enumerate(seeds):
        rng = np.random.default_rng(ss)
        lam[r] = rng.uniform(0.02, 0.8 / n, size=n)
        # the event path draws each service rate with its own scalar call
        mus[r] = [rng.uniform(0.8, 3.0) for _ in range(n)]
        c[r] = rng.uniform(0.3, 3.0, size=n)
    svcs = [[Exponential(mus[r, j]) for j in range(n)] for r in range(N)]
    ms = 1.0 / mus  # Exponential.mean
    m2 = np.stack(
        [[s.second_moment for s in row] for row in svcs]
    )  # base-class 2/rate^2 route, computed identically per class
    rho = lam * ms

    # batched workload set function b(S) for every proper subset + full set
    def b_of(S: list[int]) -> np.ndarray:
        rhoS = rho[:, S].sum(axis=1)
        w0_full = (lam * m2).sum(axis=1) / 2.0
        w0S = (lam[:, S] * m2[:, S]).sum(axis=1) / 2.0
        return rhoS * (w0_full / (1.0 - rhoS)) + w0S

    subsets = [
        list(S)
        for r_ in range(1, n)
        for S in itertools.combinations(range(n), r_)
    ]
    A_ub = np.zeros((len(subsets), n))
    for i, S in enumerate(subsets):
        A_ub[i, S] = -1.0
    b_ub_all = np.stack([-b_of(S) for S in subsets], axis=1)  # (N, n_subsets)
    b_eq_all = b_of(list(range(n)))
    A_eq = np.ones((1, n))
    coeff = c / ms

    x = np.empty((N, n))
    for r in range(N):
        res = linprog(
            coeff[r],
            A_ub=A_ub,
            b_ub=b_ub_all[r],
            A_eq=A_eq,
            b_eq=np.array([b_eq_all[r]]),
            bounds=[(0, None)] * n,
            method="highs",
        )
        if not res.success:
            raise RuntimeError(f"achievable-region LP failed: {res.message}")
        x[r] = np.asarray(res.x)
    W = (x - lam * m2 / 2.0) / np.where(rho > 0, rho, 1.0)
    lp_cost = np.empty(N)
    for r in range(N):
        lp_cost[r] = np.dot(c[r], lam[r] * (W[r] + ms[r]))

    # batched Cobham vertex identification over all permutations
    perms = np.array(list(itertools.permutations(range(n))), dtype=np.intp)
    w0 = (lam * m2).sum(axis=1) / 2.0  # same np.sum reduction as the scalar path
    waits = np.empty((N, len(perms), n))
    sigma_prev = np.zeros((N, len(perms)))
    for pos in range(n):
        cls = perms[:, pos]  # (n_perms,)
        rho_cls = rho[:, cls]  # (N, n_perms)
        sigma_k = sigma_prev + rho_cls
        vals = w0[:, None] / ((1.0 - sigma_prev) * (1.0 - sigma_k))
        np.put_along_axis(
            waits, np.broadcast_to(cls[None, :, None], (N, len(perms), 1)),
            vals[:, :, None], axis=2
        )
        sigma_prev = sigma_k
    errs = np.max(np.abs(waits - W[:, None, :]), axis=2)
    best_idx = np.argmin(errs, axis=1)  # first minimum, like the strict < scan

    rows = []
    for r, ss in enumerate(seeds):
        exact, order = optimal_average_cost(lam[r], svcs[r], c[r])
        sol_order = [int(j) for j in perms[best_idx[r]]]
        rows.append(
            {
                "lp_cost": float(lp_cost[r]),
                "cost_rel_gap": float(abs(lp_cost[r] / exact - 1.0)),
                "orders_match": float(sol_order == list(order)),
            }
        )
    return rows
