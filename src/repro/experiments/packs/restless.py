"""Restless-bandit scenario pack (E8, E19).

Whittle-index near-optimality against the LP relaxation bound on growing
homogeneous fleets, and heterogeneous fleets against the Lagrangian dual
bound — driven by the lockstep fleet-rollout vectorized kernels.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.experiments.packs import ScenarioPack
from repro.experiments.packs._shared import _float_rows
from repro.sim.vectorized import (
    lockstep_heterogeneous_rollouts,
    lockstep_restless_rollouts,
)

Params = Mapping[str, Any]
Seeds = Sequence[np.random.SeedSequence]

_SCHEMAS = {
    "E8": {
        "type": "object",
        "properties": {
            "alpha": {
                "type": "number", "exclusiveMinimum": 0, "exclusiveMaximum": 1,
            },
            "fleet_sizes": {
                "type": "array",
                "items": {"type": "integer", "minimum": 1},
                "minItems": 1,
            },
            "horizon": {"type": "integer", "minimum": 1},
            "warmup": {"type": "integer", "minimum": 0},
        },
        "additionalProperties": False,
    },
    "E19": {
        "type": "object",
        "properties": {
            "n_projects": {"type": "integer", "minimum": 1},
            "n_states": {"type": "integer", "minimum": 2},
            "m": {"type": "integer", "minimum": 0},
            "horizon": {"type": "integer", "minimum": 1},
            "warmup": {"type": "integer", "minimum": 0},
        },
        "additionalProperties": False,
    },
}

PACK = ScenarioPack(
    name="restless",
    version="1.0.0",
    docs="docs/ARCHITECTURE.md#scenario-packs",
    schemas=_SCHEMAS,
)


def _e8_project():
    """The 4-state deteriorating/recovering machine from the benchmark."""
    from repro.bandits.restless import RestlessProject

    K = 4
    P0 = np.zeros((K, K))
    for s in range(K):
        P0[s, max(s - 1, 0)] += 0.35
        P0[s, s] += 0.65
    P1 = np.zeros((K, K))
    for s in range(K):
        P1[s, K - 1] += 0.8
        P1[s, min(s + 1, K - 1)] += 0.2
    R0 = np.linspace(0.0, 1.0, K)
    R1 = np.full(K, -0.05)
    return RestlessProject(P0=P0, P1=P1, R0=R0, R1=R1)


@PACK.scenario(
    "E8",
    title="Whittle index: near-optimality against the LP relaxation bound",
    claim=(
        "Whittle's restless index [48] is near-optimal and asymptotically "
        "optimal as N grows with m/N fixed (Weber–Weiss [44]); the LP "
        "relaxation [7] upper-bounds every policy."
    ),
    verdict=(
        "Reproduced: the bound dominates simulation everywhere; the "
        "per-project gap shrinks with N and ends within a few percent of "
        "the bound."
    ),
    defaults={"alpha": 0.3, "fleet_sizes": (10, 40, 160), "horizon": 2000, "warmup": 200},
    checks={
        "bound_dominates": lambda m: m["min_gap"] > -0.02,
        "gap_shrinks_with_n": lambda m: m["last_gap"] <= m["first_gap"] + 0.01,
        "whittle_beats_myopic": lambda m: m["whittle_large_n"] >= m["myopic"] - 0.02,
    },
    tags=("bandits", "simulation", "asymptotics"),
)
def simulate_e8(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E8: Whittle index: near-optimality against the LP relaxation bound.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.bandits import (
        average_relaxation_bound,
        myopic_rule,
        simulate_restless,
        whittle_rule,
    )

    proj = _e8_project()
    alpha = float(params["alpha"])
    horizon, warmup = int(params["horizon"]), int(params["warmup"])
    bound, _ = average_relaxation_bound(proj, alpha)
    w_rule, m_rule = whittle_rule(proj), myopic_rule(proj)

    sizes = [int(n) for n in params["fleet_sizes"]]
    rngs = np.random.default_rng(ss).spawn(len(sizes) + 1)
    gaps = []
    whittle_large = 0.0
    for rng, n in zip(rngs, sizes):
        got = simulate_restless(
            proj, n, int(alpha * n), w_rule, horizon, rng, warmup=warmup
        )
        gaps.append(bound - got)
        whittle_large = got
    myop = simulate_restless(
        proj,
        sizes[-1],
        int(alpha * sizes[-1]),
        m_rule,
        horizon,
        rngs[-1],
        warmup=warmup,
    )
    return {
        "bound": float(bound),
        "first_gap": float(gaps[0]),
        "last_gap": float(gaps[-1]),
        "min_gap": float(min(gaps)),
        "whittle_large_n": float(whittle_large),
        "myopic": float(myop),
    }


@PACK.scenario(
    "E19",
    title="Heterogeneous restless fleets vs the Lagrangian bound",
    claim=(
        "Heterogeneous restless fleets (Bertsimas–Niño-Mora [7]): index "
        "heuristics tested computationally against the Lagrangian "
        "relaxation bound."
    ),
    verdict=(
        "Reproduced: the Lagrangian dual bound dominates simulation; the "
        "Whittle policy operates close to the bound and at or above the "
        "myopic policy."
    ),
    defaults={"n_projects": 6, "n_states": 3, "m": 2, "horizon": 4000, "warmup": 400},
    checks={
        "bound_respected": lambda m: m["whittle_frac"] <= 1.05,
        "whittle_matches_myopic": lambda m: m["whittle_frac"]
        >= m["myopic_frac"] - 0.05,
        "whittle_near_bound": lambda m: m["whittle_frac"] >= 0.8,
    },
    tags=("bandits", "simulation", "heterogeneous"),
)
def simulate_e19(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E19: Heterogeneous restless fleets vs the Lagrangian bound.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.bandits import (
        heterogeneous_relaxation_bound,
        heterogeneous_whittle_rule,
        random_restless_project,
        simulate_heterogeneous_restless,
    )
    from repro.core.indices import IndexRule

    class MyopicHet(IndexRule):
        def __init__(self, projects):
            self._gaps = [p.R1 - p.R0 for p in projects]

        def index(self, item, state=None):
            return float(self._gaps[int(item)][0 if state is None else int(state)])

        @property
        def name(self):
            return "Myopic[het]"

    rng = np.random.default_rng(ss)
    projects = [
        random_restless_project(int(params["n_states"]), rng)
        for _ in range(int(params["n_projects"]))
    ]
    m = int(params["m"])
    horizon, warmup = int(params["horizon"]), int(params["warmup"])
    bound, lam_star = heterogeneous_relaxation_bound(projects, m)
    w_rule = heterogeneous_whittle_rule(projects, criterion="average")

    sim_w, sim_m = rng.spawn(2)
    whittle = simulate_heterogeneous_restless(
        projects, m, w_rule, horizon, sim_w, warmup=warmup
    )
    myopic = simulate_heterogeneous_restless(
        projects, m, MyopicHet(projects), horizon, sim_m, warmup=warmup
    )
    return {
        "bound": float(bound),
        "shadow_price": float(lam_star),
        "whittle_frac": float(whittle / bound),
        "myopic_frac": float(myopic / bound),
    }


# ---------------------------------------------------------------------------
# vectorized kernels
# ---------------------------------------------------------------------------


@PACK.kernel(
    "E8",
    mode="batched",
    note="the LP bound and Whittle/myopic index tables are identical for "
    "every replication and computed once; the fleet rollouts run in "
    "lockstep across replications",
)
def batch_e8(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E8: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e8`` on the same seeds.
    """
    from repro.bandits import average_relaxation_bound, myopic_rule, whittle_rule
    from repro.experiments.scenarios import _e8_project

    proj = _e8_project()
    alpha = float(params["alpha"])
    horizon, warmup = int(params["horizon"]), int(params["warmup"])
    sizes = [int(n) for n in params["fleet_sizes"]]
    N = len(seeds)

    bound, _ = average_relaxation_bound(proj, alpha)
    w_rule, m_rule = whittle_rule(proj), myopic_rule(proj)
    K = proj.n_states
    w_table = np.array([w_rule.index(0, s) for s in range(K)])
    m_table = np.array([m_rule.index(0, s) for s in range(K)])
    cum0 = np.cumsum(proj.P0, axis=1)
    cum1 = np.cumsum(proj.P1, axis=1)

    gens = [np.random.default_rng(ss).spawn(len(sizes) + 1) for ss in seeds]
    gaps = np.empty((len(sizes), N))
    whittle_large = np.zeros(N)
    for i, n in enumerate(sizes):
        got = lockstep_restless_rollouts(
            cum0,
            cum1,
            proj.R0,
            proj.R1,
            w_table,
            n,
            int(alpha * n),
            horizon,
            [g[i] for g in gens],
            warmup=warmup,
        )
        gaps[i] = bound - got
        whittle_large = got
    myop = lockstep_restless_rollouts(
        cum0,
        cum1,
        proj.R0,
        proj.R1,
        m_table,
        sizes[-1],
        int(alpha * sizes[-1]),
        horizon,
        [g[-1] for g in gens],
        warmup=warmup,
    )
    return _float_rows(
        {
            "bound": float(bound),
            "first_gap": gaps[0],
            "last_gap": gaps[-1],
            # elementwise minimum replicates min() over the per-size floats
            "min_gap": gaps.min(axis=0),
            "whittle_large_n": whittle_large,
            "myopic": myop,
        },
        N,
    )


@PACK.kernel(
    "E19",
    mode="lockstep",
    note="both policy rollouts advance all replications' fleets in "
    "lockstep on stacked (reps, projects, states) arrays; the Lagrangian "
    "bound and Whittle tables keep their exact per-replication solves "
    "(they depend on each replication's random projects and dominate the "
    "runtime)",
)
def batch_e19(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E19: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e19`` on the same seeds.
    """
    from repro.bandits import (
        heterogeneous_relaxation_bound,
        random_restless_project,
    )
    from repro.bandits.restless import whittle_indices

    n_proj, n_states = int(params["n_projects"]), int(params["n_states"])
    m = int(params["m"])
    horizon, warmup = int(params["horizon"]), int(params["warmup"])
    N = len(seeds)

    bounds = np.empty(N)
    shadow = np.empty(N)
    w_tables = np.empty((N, n_proj, n_states))
    myop_tables = np.empty((N, n_proj, n_states))
    cum0 = np.empty((N, n_proj, n_states, n_states))
    cum1 = np.empty((N, n_proj, n_states, n_states))
    R0 = np.empty((N, n_proj, n_states))
    R1 = np.empty((N, n_proj, n_states))
    sims_w, sims_m = [], []
    for r, ss in enumerate(seeds):
        rng = np.random.default_rng(ss)
        projects = [random_restless_project(n_states, rng) for _ in range(n_proj)]
        bounds[r], shadow[r] = heterogeneous_relaxation_bound(projects, m)
        # heterogeneous_whittle_rule computes exactly these per-project
        # tables; the rollout reads them as floats, like rule.index does
        for k, p in enumerate(projects):
            w_tables[r, k] = whittle_indices(p, criterion="average")
            myop_tables[r, k] = p.R1 - p.R0
            cum0[r, k] = np.cumsum(p.P0, axis=1)
            cum1[r, k] = np.cumsum(p.P1, axis=1)
            R0[r, k] = p.R0
            R1[r, k] = p.R1
        sw, sm = rng.spawn(2)
        sims_w.append(sw)
        sims_m.append(sm)

    whittle = lockstep_heterogeneous_rollouts(
        w_tables, cum0, cum1, R0, R1, m, horizon, sims_w, warmup=warmup
    )
    myopic = lockstep_heterogeneous_rollouts(
        myop_tables, cum0, cum1, R0, R1, m, horizon, sims_m, warmup=warmup
    )
    return _float_rows(
        {
            "bound": bounds,
            "shadow_price": shadow,
            "whittle_frac": whittle / bounds,
            "myopic_frac": myopic / bounds,
        },
        N,
    )
