"""Helpers shared by the built-in scenario-pack kernel implementations."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

Params = Mapping[str, Any]
Seeds = Sequence[np.random.SeedSequence]

__all__ = ["_crn_batches", "_float_rows"]


def _float_rows(columns: Mapping[str, np.ndarray], n: int) -> list[dict[str, float]]:
    """Transpose column vectors (or scalars) into per-replication dicts of
    plain floats — the event path's return type."""
    out: list[dict[str, float]] = []
    for r in range(n):
        out.append(
            {
                k: float(v) if np.ndim(v) == 0 else float(v[r])
                for k, v in columns.items()
            }
        )
    return out


def _crn_batches(seeds: Seeds, k: int) -> list[list[np.random.Generator]]:
    """Per-case generator batches under common random numbers: case ``i``
    gets one fresh ``default_rng(ss)`` per replication — exactly the
    generators ``crn_generators(ss, k)`` hands the event path's ``zip``."""
    return [[np.random.default_rng(ss) for ss in seeds] for _ in range(k)]
