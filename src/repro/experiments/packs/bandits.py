"""Classical-bandit scenario pack (E7, E9, A1).

Gittins-index optimality against the exact product-space DP, the
switching-penalty counterexample with its hysteresis recovery, and the
VWB-vs-restart algorithmic cross-check — with batched-MDP vectorized
kernels.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.experiments.packs import ScenarioPack
from repro.experiments.packs._shared import _float_rows
from repro.sim.vectorized import (
    batched_product_mdp,
    batched_switching_mdp,
    restart_gittins_batch,
)

Params = Mapping[str, Any]
Seeds = Sequence[np.random.SeedSequence]

_BETA = {"type": "number", "minimum": 0, "exclusiveMaximum": 1}

_SCHEMAS = {
    "E7": {
        "type": "object",
        "properties": {
            "n_projects": {"type": "integer", "minimum": 1},
            "n_states": {"type": "integer", "minimum": 2},
            "beta": _BETA,
            "algo_states": {"type": "integer", "minimum": 2},
        },
        "additionalProperties": False,
    },
    "E9": {
        "type": "object",
        "properties": {
            "beta": _BETA,
            "cost": {"type": "number", "minimum": 0},
            "n_states": {"type": "integer", "minimum": 2},
            "n_projects": {"type": "integer", "minimum": 1},
        },
        "additionalProperties": False,
    },
    "A1": {
        "type": "object",
        "properties": {
            "n_states": {"type": "integer", "minimum": 2},
            "beta": _BETA,
        },
        "additionalProperties": False,
    },
}

PACK = ScenarioPack(
    name="bandits",
    version="1.0.0",
    docs="docs/ARCHITECTURE.md#scenario-packs",
    schemas=_SCHEMAS,
)


@PACK.scenario(
    "E7",
    title="Gittins index rule vs exact product-space DP",
    claim=(
        "The Gittins index rule is optimal for classical multi-armed "
        "bandits (Gittins–Jones [19]); indices are efficiently computable "
        "[40] while the joint DP state space grows exponentially."
    ),
    verdict=(
        "Reproduced: the index policy matches product-space DP on every "
        "instance; two independent index algorithms agree; the myopic rule "
        "is weakly suboptimal."
    ),
    defaults={"n_projects": 3, "n_states": 3, "beta": 0.9, "algo_states": 8},
    checks={
        "gittins_optimal": lambda m: m["gittins_gap"] < 1e-8,
        "algorithms_agree": lambda m: m["algo_diff"] < 1e-6,
        "myopic_no_better": lambda m: m["myopic_loss"] >= -1e-9,
    },
    tags=("bandits", "exact"),
)
def simulate_e7(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E7: Gittins index rule vs exact product-space DP.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.bandits import (
        evaluate_priority_policy,
        gittins_indices_restart,
        gittins_indices_vwb,
        gittins_policy,
        optimal_bandit_value,
        random_project,
    )
    from repro.core.indices import StaticIndexRule

    rng = np.random.default_rng(ss)
    beta = float(params["beta"])
    n_proj, n_states = int(params["n_projects"]), int(params["n_states"])
    projects = [random_project(n_states, rng) for _ in range(n_proj)]
    opt = optimal_bandit_value(projects, beta)
    git = evaluate_priority_policy(projects, gittins_policy(projects, beta).rule, beta)
    myopic_table = {
        (pid, s): float(projects[pid].R[s])
        for pid in range(n_proj)
        for s in range(n_states)
    }
    myop = evaluate_priority_policy(projects, StaticIndexRule(myopic_table), beta)

    proj = random_project(int(params["algo_states"]), rng)
    algo_diff = float(
        np.max(np.abs(gittins_indices_vwb(proj, beta) - gittins_indices_restart(proj, beta)))
    )
    return {
        "opt": float(opt),
        "gittins_gap": float(abs(git / opt - 1.0)),
        "myopic_loss": float(1.0 - myop / opt),
        "algo_diff": algo_diff,
    }


@PACK.scenario(
    "E9",
    title="Switching penalties break Gittins; hysteresis recovers the gap",
    claim=(
        "With switching penalties the Gittins rule loses optimality "
        "(Asawa–Teneketzis [2]); a hysteresis index heuristic recovers "
        "most of the gap."
    ),
    verdict=(
        "Reproduced: plain Gittins is strictly suboptimal on found "
        "instances; hysteresis recovers the bulk of the gap."
    ),
    defaults={"beta": 0.9, "cost": 1.0, "n_states": 3, "n_projects": 2},
    checks={
        "hysteresis_no_worse": lambda m: m["hyst_frac"] >= m["plain_frac"] - 1e-9,
        "hysteresis_near_optimal": lambda m: m["hyst_frac"] > 0.95,
        "plain_not_always_optimal": lambda m: m["plain_frac"] < 1.0 - 1e-12,
    },
    tags=("bandits", "exact", "counterexample"),
)
def simulate_e9(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E9: Switching penalties break Gittins; hysteresis recovers the gap.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.bandits import (
        evaluate_switching_policy,
        gittins_with_hysteresis,
        optimal_switching_value,
        plain_gittins_switch_policy,
        random_project,
    )

    rng = np.random.default_rng(ss)
    beta, cost = float(params["beta"]), float(params["cost"])
    projects = [
        random_project(int(params["n_states"]), rng)
        for _ in range(int(params["n_projects"]))
    ]
    opt = optimal_switching_value(projects, cost, beta)
    plain = evaluate_switching_policy(
        projects, cost, beta, plain_gittins_switch_policy(projects, beta)
    )
    hyst = evaluate_switching_policy(
        projects, cost, beta, gittins_with_hysteresis(projects, cost, beta)
    )
    return {
        "opt": float(opt),
        "plain_frac": float(plain / opt),
        "hyst_frac": float(hyst / opt),
    }


@PACK.scenario(
    "A1",
    title="Ablation: VWB vs restart-in-state Gittins algorithms",
    claim=(
        "Ablation: the VWB largest-index-first recursion and the "
        "Katehakis–Veinott restart-in-state formulation are independent "
        "algorithms for the same Gittins indices and must agree to "
        "numerical precision."
    ),
    verdict="Agreement to 1e-6 at every tested size.",
    defaults={"n_states": 20, "beta": 0.9},
    checks={
        "algorithms_agree": lambda m: m["algo_diff"] < 1e-6,
        "top_index_is_top_reward": lambda m: m["top_index_err"] < 1e-8,
    },
    tags=("bandits", "exact", "ablation"),
)
def simulate_a1(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of A1: Ablation: VWB vs restart-in-state Gittins algorithms.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.bandits import (
        gittins_indices_restart,
        gittins_indices_vwb,
        random_project,
    )

    rng = np.random.default_rng(ss)
    beta = float(params["beta"])
    proj = random_project(int(params["n_states"]), rng)
    g_vwb = gittins_indices_vwb(proj, beta)
    g_restart = gittins_indices_restart(proj, beta, tol=1e-11)
    return {
        "algo_diff": float(np.max(np.abs(g_vwb - g_restart))),
        # the top Gittins index equals the top one-step reward
        "top_index_err": float(abs(np.max(g_vwb) - np.max(proj.R))),
    }


# ---------------------------------------------------------------------------
# vectorized kernels
# ---------------------------------------------------------------------------


def _sequential_argmax(
    values: np.ndarray, tie_rank: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Emulate ``max(range(A), key=lambda a: (values[:, a], tie_rank[a]))``
    per row: a later action replaces the incumbent iff its key tuple is
    strictly greater (value strictly greater, or exactly equal value and
    strictly greater tie rank).  Returns (argmax, max values)."""
    N, A = values.shape
    best = np.zeros(N, dtype=np.int64)
    best_val = values[:, 0].copy()
    for a in range(1, A):
        v = values[:, a]
        better = (v > best_val) | ((v == best_val) & (tie_rank[a] > tie_rank[best]))
        best = np.where(better, a, best)
        best_val = np.where(better, v, best_val)
    return best, best_val


def _policy_values_batch(
    T: np.ndarray, R: np.ndarray, policies: np.ndarray, beta: float
) -> np.ndarray:
    """Batched :meth:`FiniteMDP.policy_value`: exact discounted values of
    per-replication deterministic policies, one LAPACK solve per slice
    (bit-identical to the per-replication solve)."""
    N, _, S, _ = T.shape
    rows = np.arange(N)[:, None]
    cols = np.arange(S)[None, :]
    P_pi = T[rows, policies, cols]
    r_pi = R[rows, policies, cols]
    return np.linalg.solve(np.eye(S) - beta * P_pi, r_pi[..., None])[..., 0]


@PACK.kernel(
    "E7",
    mode="batched",
    note="product MDPs assembled once for the whole batch and priority "
    "policies evaluated by stacked linear solves; the per-replication "
    "index-algorithm cross-check keeps its own exact control flow",
)
def batch_e7(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E7: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e7`` on the same seeds.
    """
    from repro.bandits import (
        gittins_indices_restart,
        gittins_indices_vwb,
        random_project,
    )
    from repro.mdp.core import FiniteMDP
    from repro.mdp.solvers import policy_iteration

    beta = float(params["beta"])
    n_proj, n_states = int(params["n_projects"]), int(params["n_states"])
    algo_states = int(params["algo_states"])
    N = len(seeds)
    projects = []
    algo_projects = []
    for ss in seeds:
        rng = np.random.default_rng(ss)
        projects.append([random_project(n_states, rng) for _ in range(n_proj)])
        algo_projects.append(random_project(algo_states, rng))

    Ps = [np.stack([projects[r][a].P for r in range(N)]) for a in range(n_proj)]
    Rs = [np.stack([projects[r][a].R for r in range(N)]) for a in range(n_proj)]
    T, R, states = batched_product_mdp(Ps, Rs)
    start = states.index(tuple(0 for _ in range(n_proj)))

    opt = np.empty(N)
    for r in range(N):
        mdp = FiniteMDP(T[r], R[r], validate=False)
        opt[r] = policy_iteration(mdp, beta).value[start]

    # Gittins priority policy: per-replication VWB indices, batched table
    gammas = np.stack(
        [
            np.stack([gittins_indices_vwb(projects[r][a], beta) for a in range(n_proj)])
            for r in range(N)
        ]
    )  # (N, n_proj, n_states)
    tie_rank = -np.arange(n_proj)  # key (index, -a): ties to the lowest id
    git_policy = np.empty((N, len(states)), dtype=np.int64)
    myop_policy = np.empty((N, len(states)), dtype=np.int64)
    for i, s in enumerate(states):
        git_vals = np.stack(
            [gammas[:, a, s[a]].astype(float) for a in range(n_proj)], axis=1
        )
        myop_vals = np.stack([Rs[a][:, s[a]] for a in range(n_proj)], axis=1)
        git_policy[:, i] = _sequential_argmax(git_vals, tie_rank)[0]
        myop_policy[:, i] = _sequential_argmax(myop_vals, tie_rank)[0]
    git = _policy_values_batch(T, R, git_policy, beta)[:, start]
    myop = _policy_values_batch(T, R, myop_policy, beta)[:, start]

    algo_diff = np.empty(N)
    for r in range(N):
        proj = algo_projects[r]
        algo_diff[r] = np.max(
            np.abs(
                gittins_indices_vwb(proj, beta) - gittins_indices_restart(proj, beta)
            )
        )
    return _float_rows(
        {
            "opt": opt,
            "gittins_gap": np.abs(git / opt - 1.0),
            "myopic_loss": 1.0 - myop / opt,
            "algo_diff": algo_diff,
        },
        N,
    )


@PACK.kernel(
    "E9",
    mode="batched",
    note="the joint switching MDP is assembled once for the whole batch "
    "(the event path rebuilds it three times per replication) and both "
    "heuristic policies share one set of VWB index tables",
)
def batch_e9(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for E9: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_e9`` on the same seeds.
    """
    from repro.bandits import gittins_indices_vwb, random_project
    from repro.mdp.core import FiniteMDP
    from repro.mdp.solvers import policy_iteration

    beta, cost = float(params["beta"]), float(params["cost"])
    n_proj, n_states = int(params["n_projects"]), int(params["n_states"])
    N = len(seeds)
    # the event path draws every project from one generator in sequence
    projects = []
    for ss in seeds:
        rng = np.random.default_rng(ss)
        projects.append([random_project(n_states, rng) for _ in range(n_proj)])

    Ps = [np.stack([projects[r][a].P for r in range(N)]) for a in range(n_proj)]
    Rs = [np.stack([projects[r][a].R for r in range(N)]) for a in range(n_proj)]
    T, R, states = batched_switching_mdp(Ps, Rs, cost)
    start = states.index((tuple(0 for _ in range(n_proj)), -1))

    opt = np.empty(N)
    for r in range(N):
        mdp = FiniteMDP(T[r], R[r], validate=False)
        opt[r] = policy_iteration(mdp, beta).value[start]

    gammas = np.stack(
        [
            np.stack([gittins_indices_vwb(projects[r][a], beta) for a in range(n_proj)])
            for r in range(N)
        ]
    )
    bonus = cost * (1.0 - beta)
    plain_policy = np.empty((N, len(states)), dtype=np.int64)
    hyst_policy = np.empty((N, len(states)), dtype=np.int64)
    for i, (core, inc) in enumerate(states):
        # key (value, incumbent flag, -a) -> integer tie rank
        tie_rank = np.array(
            [(1 if a == inc else 0) * n_proj + (n_proj - 1 - a) for a in range(n_proj)]
        )
        plain_vals = np.stack(
            [gammas[:, a, core[a]].astype(float) for a in range(n_proj)], axis=1
        )
        hyst_vals = np.stack(
            [
                gammas[:, a, core[a]].astype(float) + (bonus if a == inc else 0.0)
                for a in range(n_proj)
            ],
            axis=1,
        )
        plain_policy[:, i] = _sequential_argmax(plain_vals, tie_rank)[0]
        hyst_policy[:, i] = _sequential_argmax(hyst_vals, tie_rank)[0]
    plain = _policy_values_batch(T, R, plain_policy, beta)[:, start]
    hyst = _policy_values_batch(T, R, hyst_policy, beta)[:, start]
    return _float_rows(
        {"opt": opt, "plain_frac": plain / opt, "hyst_frac": hyst / opt},
        N,
    )


@PACK.kernel(
    "A1",
    mode="batched",
    note="the dominant restart-in-state value iterations run over the "
    "whole batch with stacked matrix-vector products; the VWB recursion "
    "keeps its exact per-replication control flow",
)
def batch_a1(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``batched`` kernel for A1: runs all replications at once on arrays with a replication axis;
    bit-for-bit equal to ``simulate_a1`` on the same seeds.
    """
    from repro.bandits import gittins_indices_vwb, random_project

    beta = float(params["beta"])
    n_states = int(params["n_states"])
    projs = [random_project(n_states, np.random.default_rng(ss)) for ss in seeds]
    g_vwb = [gittins_indices_vwb(p, beta) for p in projs]
    Ps = np.stack([p.P for p in projs])
    Rs = np.stack([p.R for p in projs])
    g_restart = restart_gittins_batch(Ps, Rs, beta, tol=1e-11)
    rows = []
    for r, p in enumerate(projs):
        rows.append(
            {
                "algo_diff": float(np.max(np.abs(g_vwb[r] - g_restart[r]))),
                "top_index_err": float(abs(np.max(g_vwb[r]) - np.max(p.R))),
            }
        )
    return rows
