"""Polling-system scenario pack (E15).

Exhaustive / gated / limited service under changeover times, pinned by
the pseudo-conservation law — the survey's polling claim, with the
lockstep flat-polling vectorized kernel.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.experiments.packs import ScenarioPack
from repro.utils.rng import crn_generators
from repro.experiments.packs._shared import _crn_batches
from repro.sim.vectorized import (
    lockstep_polling_simulations,
)

Params = Mapping[str, Any]
Seeds = Sequence[np.random.SeedSequence]

_SCHEMAS = {
    "E15": {
        "type": "object",
        "properties": {
            "horizon": {"type": "number", "exclusiveMinimum": 0},
            "switchover_means": {
                "type": "array",
                "items": {"type": "number", "minimum": 0},
                "minItems": 2,
                "maxItems": 2,
            },
        },
        "additionalProperties": False,
    },
}

PACK = ScenarioPack(
    name="polling",
    version="1.0.0",
    docs="docs/ARCHITECTURE.md#scenario-packs",
    schemas=_SCHEMAS,
)


_E15_LAM = (0.3, 0.2)


@PACK.scenario(
    "E15",
    title="Polling with changeovers: exhaustive <= gated <= limited",
    claim=(
        "Changeover/setup times change optimal control (polling systems, "
        "Levy–Sidi [25]): local policies rank exhaustive <= gated <= "
        "limited in weighted waits; the pseudo-conservation law pins the "
        "simulator; longer setups hurt every policy."
    ),
    verdict=(
        "Reproduced: the policy ordering holds at both switchover levels, "
        "the pseudo-conservation law matches simulation, and longer setups "
        "hurt every policy."
    ),
    defaults={"horizon": 12000.0, "switchover_means": (0.1, 0.4)},
    checks={
        "exhaustive_best": lambda m: m["exhaustive_short"] <= m["gated_short"] * 1.05
        and m["exhaustive_long"] <= m["gated_long"] * 1.05,
        "gated_beats_limited": lambda m: m["gated_short"] <= m["limited_short"] * 1.05
        and m["gated_long"] <= m["limited_long"] * 1.05,
        "pseudo_conservation": lambda m: m["max_conservation_err"] < 0.15,
        "setups_hurt": lambda m: m["exhaustive_long"] > m["exhaustive_short"]
        and m["gated_long"] > m["gated_short"]
        and m["limited_long"] > m["limited_short"],
    },
    tags=("queueing", "simulation", "polling"),
)
def simulate_e15(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E15: Polling with changeovers: exhaustive <= gated <= limited.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.distributions import Deterministic, Exponential
    from repro.queueing import PollingSystem, pseudo_conservation_rhs

    svc = [Exponential(2.0), Exponential(1.5)]
    lam = list(_E15_LAM)
    horizon = float(params["horizon"])
    short, long_ = params["switchover_means"]

    metrics: dict[str, float] = {}
    cons_errs = []
    cases = [
        (pol, sw_mean, label)
        for sw_mean, label in ((float(short), "short"), (float(long_), "long"))
        for pol in ("exhaustive", "gated", "limited")
    ]
    # CRN: all six (policy, switchover) cases replay the same streams.
    for (pol, sw_mean, label), rng in zip(cases, crn_generators(ss, len(cases))):
        sw = [Deterministic(sw_mean), Deterministic(sw_mean)]
        res = PollingSystem(lam, svc, sw, pol).simulate(horizon, rng)
        metrics[f"{pol}_{label}"] = float(res.weighted_wait_sum)
        if pol in ("exhaustive", "gated"):
            rhs = pseudo_conservation_rhs(lam, svc, sw, pol)
            cons_errs.append(abs(res.weighted_wait_sum / rhs - 1.0))
    metrics["max_conservation_err"] = float(max(cons_errs))
    return metrics


# ---------------------------------------------------------------------------
# vectorized kernels
# ---------------------------------------------------------------------------


@PACK.kernel(
    "E15",
    mode="lockstep",
    note="the pseudo-conservation right-hand sides are deterministic and "
    "hoisted; all six CRN (policy, switchover) cases run through the flat "
    "polling engine with pre-drawn service blocks, including the "
    "zero-switchover idle rule",
)
def batch_e15(seeds: Seeds, params: Params) -> list[dict[str, float]]:
    """``lockstep`` kernel for E15: drives the whole batch through the flat lockstep simulators;
    bit-for-bit equal to ``simulate_e15`` on the same seeds.
    """
    from repro.distributions import Deterministic, Exponential
    from repro.experiments.scenarios import _E15_LAM
    from repro.queueing import pseudo_conservation_rhs

    svc_rates = (2.0, 1.5)
    svc = [Exponential(r) for r in svc_rates]
    lam = list(_E15_LAM)
    horizon = float(params["horizon"])
    short, long_ = params["switchover_means"]
    N = len(seeds)

    cases = [
        (pol, sw_mean, label)
        for sw_mean, label in ((float(short), "short"), (float(long_), "long"))
        for pol in ("exhaustive", "gated", "limited")
    ]
    rhs = {
        (pol, sw_mean): pseudo_conservation_rhs(
            lam, svc, [Deterministic(sw_mean), Deterministic(sw_mean)], pol
        )
        for pol, sw_mean, _ in cases
        if pol in ("exhaustive", "gated")
    }
    metrics: dict[str, list[float]] = {}
    cons_errs: list[list[float]] = [[] for _ in range(N)]
    for (pol, sw_mean, label), rngs in zip(cases, _crn_batches(seeds, len(cases))):
        results = lockstep_polling_simulations(
            lam, svc_rates, [sw_mean, sw_mean], pol, horizon, rngs
        )
        metrics[f"{pol}_{label}"] = [float(res.weighted_wait_sum) for res in results]
        if pol in ("exhaustive", "gated"):
            for r, res in enumerate(results):
                cons_errs[r].append(
                    abs(res.weighted_wait_sum / rhs[(pol, sw_mean)] - 1.0)
                )
    rows = []
    for r in range(N):
        row = {name: vals[r] for name, vals in metrics.items()}
        row["max_conservation_err"] = float(max(cons_errs[r]))
        rows.append(row)
    return rows
