"""The built-in scenario catalogue: one registered scenario per survey
claim E1–E19.

Each ``simulate_*`` function is one *replication* of the experiment: it
derives all randomness from the child seed sequence it is handed, measures
a dictionary of named metrics, and leaves averaging/confidence intervals
to the replication runner.  Where the original benchmark averaged an inner
loop by hand (e.g. E16's 400 in-tree runs, E17's 4000 flow-shop draws),
the scenario instead measures a *single* draw and lets the runner supply
the replications — that is what makes the parallel fan-out effective.

Policy comparisons inside a replication use common random numbers: either
the policies are evaluated exactly on one shared random instance, or the
simulated policies replay identical streams via
:func:`repro.utils.rng.crn_generators`.

Defaults are sized so that one replication costs milliseconds to a few
hundred milliseconds; raise ``horizon``-style parameters for tighter
single-run estimates, or raise replication counts (cheap, parallel) for
tighter intervals.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping

import numpy as np

from repro.experiments.registry import scenario
from repro.utils.rng import crn_generators

Params = Mapping[str, Any]


def _int_seed(rng: np.random.Generator) -> int:
    """A derived integer seed for helpers that only accept ints."""
    return int(rng.integers(0, 2**31 - 1))


# ---------------------------------------------------------------------------
# E1 — WSEPT on a single machine
# ---------------------------------------------------------------------------


@scenario(
    "E1",
    title="WSEPT minimises expected weighted flowtime on one machine",
    claim=(
        "WSEPT minimises expected weighted flowtime on one machine "
        "(Rothkopf [34] / Smith [37]): the static index rule w_i/p_i is "
        "exactly optimal among nonanticipative nonpreemptive policies."
    ),
    verdict=(
        "Reproduced exactly: zero gap to brute force on every instance; "
        "FIFO and random orders lose by the expected margins."
    ),
    defaults={"n_brute": 7, "n_jobs": 50},
    checks={
        "wsept_exactly_optimal": lambda m: m["brute_gap"] < 1e-9,
        "wsept_beats_fifo": lambda m: m["fifo_ratio"] > 1.0,
        "wsept_beats_random": lambda m: m["random_ratio"] > 1.0,
    },
    tags=("batch", "exact"),
)
def simulate_e1(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E1: WSEPT minimises expected weighted flowtime on one machine.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch import (
        brute_force_optimal_sequence,
        expected_weighted_flowtime,
        fifo_order,
        random_exponential_batch,
        random_order,
        wsept_order,
    )

    rng = np.random.default_rng(ss)
    # exact-optimality check on a brute-forceable instance
    small = random_exponential_batch(int(params["n_brute"]), rng)
    _, best = brute_force_optimal_sequence(small)
    gap = expected_weighted_flowtime(small, wsept_order(small)) / best - 1.0

    # policy comparison on a larger instance (same rng draw = same instance
    # for every policy: common random numbers at the instance level)
    jobs = random_exponential_batch(int(params["n_jobs"]), rng)
    wsept = expected_weighted_flowtime(jobs, wsept_order(jobs))
    fifo = expected_weighted_flowtime(jobs, fifo_order(jobs))
    rnd = expected_weighted_flowtime(jobs, random_order(jobs, rng))
    return {
        "brute_gap": float(gap),
        "wsept": float(wsept),
        "fifo": float(fifo),
        "random": float(rnd),
        "fifo_ratio": float(fifo / wsept),
        "random_ratio": float(rnd / wsept),
    }


# ---------------------------------------------------------------------------
# E2 — Sevcik's preemptive index
# ---------------------------------------------------------------------------


@scenario(
    "E2",
    title="Sevcik/Gittins preemptive index vs nonpreemptive WSEPT",
    claim=(
        "Sevcik's preemptive index is optimal when preemption is allowed "
        "[35]; it strictly beats nonpreemptive WSEPT for DHR "
        "(high-variance) jobs and coincides with it for memoryless jobs."
    ),
    verdict=(
        "Reproduced: the index policy matches the exact DAG optimum; WSEPT "
        "pays a premium under DHR and nothing under memoryless jobs."
    ),
    defaults={"n_quanta": 12, "quantum": 0.8, "scv_range": (5.0, 10.0)},
    checks={
        "index_optimal_dhr": lambda m: m["gittins_dhr_gap"] < 1e-8,
        "preemption_helps_dhr": lambda m: m["wsept_dhr_premium"] > 0.01,
        "index_optimal_memoryless": lambda m: m["gittins_mem_gap"] < 1e-8,
        "no_gain_memoryless": lambda m: abs(m["wsept_mem_premium"]) < 0.05,
    },
    tags=("batch", "exact", "preemptive"),
)
def simulate_e2(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E2: Sevcik/Gittins preemptive index vs nonpreemptive WSEPT.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch.sevcik import (
        DiscreteJob,
        GittinsJobIndex,
        discretize_distribution,
        evaluate_index_policy_dp,
        nonpreemptive_wsept_cost,
        preemptive_single_machine_mdp,
    )
    from repro.distributions import Exponential, HyperExponential

    rng = np.random.default_rng(ss)
    quantum = float(params["quantum"])
    n_quanta = int(params["n_quanta"])
    lo, hi = params["scv_range"]
    scvs = rng.uniform(lo, hi, size=3)
    dhr = [
        DiscreteJob(
            id=j,
            pmf=discretize_distribution(
                HyperExponential.balanced_from_mean_scv(2.0, float(scv)),
                quantum,
                n_quanta,
            ),
            weight=1.0 + 0.3 * j,
        )
        for j, scv in enumerate(scvs)
    ]
    mem = [
        DiscreteJob(
            id=j,
            pmf=discretize_distribution(Exponential.from_mean(mean), 0.5, n_quanta),
            weight=1.0,
        )
        for j, mean in enumerate((1.0, 2.0, 3.0))
    ]

    opt_dhr, _ = preemptive_single_machine_mdp(dhr)
    gittins_dhr = evaluate_index_policy_dp(dhr, GittinsJobIndex(dhr))
    wsept_dhr = nonpreemptive_wsept_cost(dhr)
    opt_mem, _ = preemptive_single_machine_mdp(mem)
    gittins_mem = evaluate_index_policy_dp(mem, GittinsJobIndex(mem))
    wsept_mem = nonpreemptive_wsept_cost(mem)
    return {
        "opt_dhr": float(opt_dhr),
        "gittins_dhr_gap": float(abs(gittins_dhr / opt_dhr - 1.0)),
        "wsept_dhr_premium": float(wsept_dhr / opt_dhr - 1.0),
        "opt_mem": float(opt_mem),
        "gittins_mem_gap": float(abs(gittins_mem / opt_mem - 1.0)),
        "wsept_mem_premium": float(wsept_mem / opt_mem - 1.0),
    }


# ---------------------------------------------------------------------------
# E3 / E4 — SEPT flowtime and LEPT makespan on identical parallel machines
# ---------------------------------------------------------------------------


@scenario(
    "E3",
    title="SEPT minimises flowtime on identical parallel machines",
    claim=(
        "SEPT minimises total expected flowtime on identical parallel "
        "machines for exponential jobs (Glazebrook [20]); the general "
        "version requires a stochastically ordered family "
        "(Weber–Varaiya–Walrand [43])."
    ),
    verdict=(
        "Reproduced exactly against the subset DP; the instances satisfy "
        "the ordering hypothesis."
    ),
    defaults={"n_jobs": 8, "m": 2, "rate_range": (0.3, 3.0)},
    checks={
        "sept_exactly_optimal": lambda m: m["sept_gap"] < 1e-9,
        "lept_no_better": lambda m: m["lept_ratio"] >= 1.0 - 1e-9,
        "family_st_ordered": lambda m: m["family_ordered"] == 1.0,
    },
    tags=("batch", "exact", "parallel-machines"),
)
def simulate_e3(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E3: SEPT minimises flowtime on identical parallel machines.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch import flowtime_dp, policy_flowtime_dp
    from repro.distributions import Exponential, is_stochastically_ordered_family

    rng = np.random.default_rng(ss)
    lo, hi = params["rate_range"]
    rates = rng.uniform(lo, hi, size=int(params["n_jobs"]))
    m = int(params["m"])
    opt = flowtime_dp(rates, m)
    sept = policy_flowtime_dp(rates, m, "sept")
    lept = policy_flowtime_dp(rates, m, "lept")
    ordered = is_stochastically_ordered_family([Exponential(r) for r in rates])
    return {
        "opt": float(opt),
        "sept_gap": float(sept / opt - 1.0),
        "lept_ratio": float(lept / opt),
        "family_ordered": float(ordered),
    }


@scenario(
    "E4",
    title="LEPT minimises expected makespan on identical parallel machines",
    claim=(
        "LEPT minimises expected makespan on identical parallel machines "
        "for exponential jobs (Bruno–Downey–Frederickson [10])."
    ),
    verdict=(
        "Reproduced exactly; the opposite rule (SEPT) pays a visible "
        "makespan penalty."
    ),
    defaults={"n_jobs": 8, "m": 2, "rate_range": (0.3, 3.0)},
    checks={
        "lept_exactly_optimal": lambda m: m["lept_gap"] < 1e-9,
        "sept_visibly_worse": lambda m: m["sept_penalty"] > 0.0,
    },
    tags=("batch", "exact", "parallel-machines"),
)
def simulate_e4(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E4: LEPT minimises expected makespan on identical parallel machines.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch import makespan_dp, policy_makespan_dp

    rng = np.random.default_rng(ss)
    lo, hi = params["rate_range"]
    rates = rng.uniform(lo, hi, size=int(params["n_jobs"]))
    m = int(params["m"])
    opt = makespan_dp(rates, m)
    lept = policy_makespan_dp(rates, m, "lept")
    sept = policy_makespan_dp(rates, m, "sept")
    return {
        "opt": float(opt),
        "lept_gap": float(lept / opt - 1.0),
        "sept_penalty": float(sept / opt - 1.0),
    }


# ---------------------------------------------------------------------------
# E5 — two-point counterexample (exact, fixed instance)
# ---------------------------------------------------------------------------


@scenario(
    "E5",
    title="Two-point jobs on two machines break SEPT",
    claim=(
        "Outside the assumptions the simple rules fail: with two-point "
        "processing times on two machines SEPT is strictly suboptimal "
        "(Coffman–Hofri–Weiss [13])."
    ),
    verdict=(
        "Reproduced with exact enumeration: SEPT is >2% above the optimal "
        "order on the study instance; several orders strictly beat it."
    ),
    defaults={"m": 2},
    checks={
        "sept_strictly_suboptimal": lambda m: m["sept_ratio"] > 1.02,
        "several_orders_beat_sept": lambda m: m["n_better_orders"] >= 1.0,
    },
    tags=("batch", "exact", "counterexample"),
)
def simulate_e5(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E5: Two-point jobs on two machines break SEPT.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch import Job, sept_order
    from repro.batch.parallel import exact_two_point_list_flowtime
    from repro.distributions import TwoPoint

    # The study instance (found by exact search); the computation is fully
    # deterministic, so every replication returns identical metrics.
    jobs = [
        Job(0, TwoPoint(1.016, 11.897, 0.935)),
        Job(1, TwoPoint(1.343, 7.954, 0.609)),
        Job(2, TwoPoint(1.832, 7.195, 0.556)),
        Job(3, TwoPoint(0.932, 15.481, 0.749)),
    ]
    m = int(params["m"])
    sept = tuple(sept_order(jobs))
    values = {
        perm: exact_two_point_list_flowtime(jobs, m, list(perm))
        for perm in itertools.permutations(range(len(jobs)))
    }
    best = min(values.values())
    return {
        "sept_value": float(values[sept]),
        "best_value": float(best),
        "sept_ratio": float(values[sept] / best),
        "n_better_orders": float(
            sum(v < values[sept] - 1e-9 for v in values.values())
        ),
    }


# ---------------------------------------------------------------------------
# E6 — Weiss's turnpike
# ---------------------------------------------------------------------------


@scenario(
    "E6",
    title="WSEPT turnpike: the absolute gap is bounded in n",
    claim=(
        "Weiss's turnpike [46]: WSEPT's absolute suboptimality gap on "
        "parallel machines is bounded independent of n, so its relative "
        "gap vanishes as the batch grows."
    ),
    verdict=(
        "Reproduced with exact DP values: the optimum grows ~n^2 while the "
        "gap stays O(1); relative gap < 1% at the largest size."
    ),
    defaults={"ns": (4, 8, 12), "m": 2},
    checks={
        "optimum_grows": lambda m: m["opt_growth"] > 3.0,
        "abs_gap_bounded": lambda m: m["max_abs_gap"] < 0.5,
        "gaps_nonnegative": lambda m: m["min_abs_gap"] >= -1e-9,
        "rel_gap_vanishes": lambda m: m["last_rel_gap"] < 0.01,
    },
    tags=("batch", "exact", "asymptotics"),
)
def simulate_e6(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E6: WSEPT turnpike: the absolute gap is bounded in n.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch.turnpike import exact_gap_sweep

    rng = np.random.default_rng(ss)
    ns = [int(n) for n in params["ns"]]
    points = exact_gap_sweep(ns, m=int(params["m"]), seed=_int_seed(rng))
    return {
        "opt_growth": float(points[-1].optimal_value / points[0].optimal_value),
        "max_abs_gap": float(max(p.absolute_gap for p in points)),
        "min_abs_gap": float(min(p.absolute_gap for p in points)),
        "last_rel_gap": float(points[-1].relative_gap),
    }


# ---------------------------------------------------------------------------
# E7 — Gittins index optimality for classical bandits
# ---------------------------------------------------------------------------


@scenario(
    "E7",
    title="Gittins index rule vs exact product-space DP",
    claim=(
        "The Gittins index rule is optimal for classical multi-armed "
        "bandits (Gittins–Jones [19]); indices are efficiently computable "
        "[40] while the joint DP state space grows exponentially."
    ),
    verdict=(
        "Reproduced: the index policy matches product-space DP on every "
        "instance; two independent index algorithms agree; the myopic rule "
        "is weakly suboptimal."
    ),
    defaults={"n_projects": 3, "n_states": 3, "beta": 0.9, "algo_states": 8},
    checks={
        "gittins_optimal": lambda m: m["gittins_gap"] < 1e-8,
        "algorithms_agree": lambda m: m["algo_diff"] < 1e-6,
        "myopic_no_better": lambda m: m["myopic_loss"] >= -1e-9,
    },
    tags=("bandits", "exact"),
)
def simulate_e7(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E7: Gittins index rule vs exact product-space DP.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.bandits import (
        evaluate_priority_policy,
        gittins_indices_restart,
        gittins_indices_vwb,
        gittins_policy,
        optimal_bandit_value,
        random_project,
    )
    from repro.core.indices import StaticIndexRule

    rng = np.random.default_rng(ss)
    beta = float(params["beta"])
    n_proj, n_states = int(params["n_projects"]), int(params["n_states"])
    projects = [random_project(n_states, rng) for _ in range(n_proj)]
    opt = optimal_bandit_value(projects, beta)
    git = evaluate_priority_policy(projects, gittins_policy(projects, beta).rule, beta)
    myopic_table = {
        (pid, s): float(projects[pid].R[s])
        for pid in range(n_proj)
        for s in range(n_states)
    }
    myop = evaluate_priority_policy(projects, StaticIndexRule(myopic_table), beta)

    proj = random_project(int(params["algo_states"]), rng)
    algo_diff = float(
        np.max(np.abs(gittins_indices_vwb(proj, beta) - gittins_indices_restart(proj, beta)))
    )
    return {
        "opt": float(opt),
        "gittins_gap": float(abs(git / opt - 1.0)),
        "myopic_loss": float(1.0 - myop / opt),
        "algo_diff": algo_diff,
    }


# ---------------------------------------------------------------------------
# E8 — Whittle index for restless bandits
# ---------------------------------------------------------------------------


def _e8_project():
    """The 4-state deteriorating/recovering machine from the benchmark."""
    from repro.bandits.restless import RestlessProject

    K = 4
    P0 = np.zeros((K, K))
    for s in range(K):
        P0[s, max(s - 1, 0)] += 0.35
        P0[s, s] += 0.65
    P1 = np.zeros((K, K))
    for s in range(K):
        P1[s, K - 1] += 0.8
        P1[s, min(s + 1, K - 1)] += 0.2
    R0 = np.linspace(0.0, 1.0, K)
    R1 = np.full(K, -0.05)
    return RestlessProject(P0=P0, P1=P1, R0=R0, R1=R1)


@scenario(
    "E8",
    title="Whittle index: near-optimality against the LP relaxation bound",
    claim=(
        "Whittle's restless index [48] is near-optimal and asymptotically "
        "optimal as N grows with m/N fixed (Weber–Weiss [44]); the LP "
        "relaxation [7] upper-bounds every policy."
    ),
    verdict=(
        "Reproduced: the bound dominates simulation everywhere; the "
        "per-project gap shrinks with N and ends within a few percent of "
        "the bound."
    ),
    defaults={"alpha": 0.3, "fleet_sizes": (10, 40, 160), "horizon": 2000, "warmup": 200},
    checks={
        "bound_dominates": lambda m: m["min_gap"] > -0.02,
        "gap_shrinks_with_n": lambda m: m["last_gap"] <= m["first_gap"] + 0.01,
        "whittle_beats_myopic": lambda m: m["whittle_large_n"] >= m["myopic"] - 0.02,
    },
    tags=("bandits", "simulation", "asymptotics"),
)
def simulate_e8(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E8: Whittle index: near-optimality against the LP relaxation bound.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.bandits import (
        average_relaxation_bound,
        myopic_rule,
        simulate_restless,
        whittle_rule,
    )

    proj = _e8_project()
    alpha = float(params["alpha"])
    horizon, warmup = int(params["horizon"]), int(params["warmup"])
    bound, _ = average_relaxation_bound(proj, alpha)
    w_rule, m_rule = whittle_rule(proj), myopic_rule(proj)

    sizes = [int(n) for n in params["fleet_sizes"]]
    rngs = np.random.default_rng(ss).spawn(len(sizes) + 1)
    gaps = []
    whittle_large = 0.0
    for rng, n in zip(rngs, sizes):
        got = simulate_restless(
            proj, n, int(alpha * n), w_rule, horizon, rng, warmup=warmup
        )
        gaps.append(bound - got)
        whittle_large = got
    myop = simulate_restless(
        proj,
        sizes[-1],
        int(alpha * sizes[-1]),
        m_rule,
        horizon,
        rngs[-1],
        warmup=warmup,
    )
    return {
        "bound": float(bound),
        "first_gap": float(gaps[0]),
        "last_gap": float(gaps[-1]),
        "min_gap": float(min(gaps)),
        "whittle_large_n": float(whittle_large),
        "myopic": float(myop),
    }


# ---------------------------------------------------------------------------
# E9 — switching costs break the Gittins rule
# ---------------------------------------------------------------------------


@scenario(
    "E9",
    title="Switching penalties break Gittins; hysteresis recovers the gap",
    claim=(
        "With switching penalties the Gittins rule loses optimality "
        "(Asawa–Teneketzis [2]); a hysteresis index heuristic recovers "
        "most of the gap."
    ),
    verdict=(
        "Reproduced: plain Gittins is strictly suboptimal on found "
        "instances; hysteresis recovers the bulk of the gap."
    ),
    defaults={"beta": 0.9, "cost": 1.0, "n_states": 3, "n_projects": 2},
    checks={
        "hysteresis_no_worse": lambda m: m["hyst_frac"] >= m["plain_frac"] - 1e-9,
        "hysteresis_near_optimal": lambda m: m["hyst_frac"] > 0.95,
        "plain_not_always_optimal": lambda m: m["plain_frac"] < 1.0 - 1e-12,
    },
    tags=("bandits", "exact", "counterexample"),
)
def simulate_e9(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E9: Switching penalties break Gittins; hysteresis recovers the gap.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.bandits import (
        evaluate_switching_policy,
        gittins_with_hysteresis,
        optimal_switching_value,
        plain_gittins_switch_policy,
        random_project,
    )

    rng = np.random.default_rng(ss)
    beta, cost = float(params["beta"]), float(params["cost"])
    projects = [
        random_project(int(params["n_states"]), rng)
        for _ in range(int(params["n_projects"]))
    ]
    opt = optimal_switching_value(projects, cost, beta)
    plain = evaluate_switching_policy(
        projects, cost, beta, plain_gittins_switch_policy(projects, beta)
    )
    hyst = evaluate_switching_policy(
        projects, cost, beta, gittins_with_hysteresis(projects, cost, beta)
    )
    return {
        "opt": float(opt),
        "plain_frac": float(plain / opt),
        "hyst_frac": float(hyst / opt),
    }


# ---------------------------------------------------------------------------
# E10 — cµ rule for the multiclass M/G/1
# ---------------------------------------------------------------------------

_E10_ARRIVAL = (0.2, 0.25, 0.15)
_E10_COSTS = (1.0, 2.5, 1.8)


def _e10_services():
    from repro.distributions import Erlang, Exponential, HyperExponential

    return [
        Exponential(1.2),
        Erlang(2, 2.0),
        HyperExponential.balanced_from_mean_scv(0.9, 3.0),
    ]


@scenario(
    "E10",
    title="cµ rule optimality for the multiclass M/G/1",
    claim=(
        "The cµ rule is optimal for the multiclass M/G/1 [15]; the "
        "achievable region is a polytope whose vertices are the strict "
        "priority rules [14, 17], so simulation, Cobham's formulas and the "
        "conservation laws must agree."
    ),
    verdict=(
        "Reproduced: cµ selects the best priority order; simulation matches "
        "Cobham's formulas; simulated waits satisfy strong conservation."
    ),
    defaults={"horizon": 8000.0, "conservation_rtol": 0.15},
    checks={
        "cmu_is_best_vertex": lambda m: m["cmu_picks_best"] == 1.0,
        "sim_matches_cobham": lambda m: abs(m["cmu_sim_ratio"] - 1.0) < 0.1,
        "conservation_holds": lambda m: m["conservation_ok"] >= 0.5,
        "polytope_has_all_vertices": lambda m: m["n_vertices"] == 6.0,
    },
    tags=("queueing", "simulation", "conservation"),
)
def simulate_e10(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E10: cµ rule optimality for the multiclass M/G/1.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.core.conservation import (
        check_strong_conservation,
        performance_polytope_vertices,
    )
    from repro.queueing import optimal_average_cost, order_average_cost, simulate_network
    from repro.queueing.network import ClassConfig, QueueingNetwork, StationConfig

    services = _e10_services()
    arrival, costs = list(_E10_ARRIVAL), list(_E10_COSTS)
    horizon = float(params["horizon"])

    opt_cost, cmu = optimal_average_cost(arrival, services, costs)
    exact = {
        perm: order_average_cost(arrival, services, costs, perm)
        for perm in itertools.permutations(range(3))
    }
    best_perm = min(exact, key=exact.get)
    worst_perm = max(exact, key=exact.get)

    # CRN: both simulated orders replay the identical event stream.
    sims = {}
    for perm, rng in zip((tuple(cmu), worst_perm), crn_generators(ss, 2)):
        net = QueueingNetwork(
            [
                ClassConfig(0, services[j], arrival_rate=arrival[j], cost=costs[j])
                for j in range(3)
            ],
            [StationConfig(discipline="priority", priority=perm)],
        )
        sims[perm] = simulate_network(net, horizon, rng)

    ms = np.array([s.mean for s in services])
    m2 = np.array([s.second_moment for s in services])
    conserved = check_strong_conservation(
        arrival, ms, m2, sims[tuple(cmu)].mean_waits,
        rtol=float(params["conservation_rtol"]),
    )
    return {
        "opt_cost": float(opt_cost),
        "cmu_picks_best": float(tuple(cmu) == best_perm),
        "cmu_sim_ratio": float(sims[tuple(cmu)].cost_rate / opt_cost),
        "worst_exact_ratio": float(exact[worst_perm] / opt_cost),
        "worst_sim_ratio": float(sims[worst_perm].cost_rate / opt_cost),
        "conservation_ok": float(conserved),
        "n_vertices": float(len(performance_polytope_vertices(arrival, ms, m2))),
    }


# ---------------------------------------------------------------------------
# E11 — Klimov's model with Markovian feedback
# ---------------------------------------------------------------------------

_E11_LAM = (0.25, 0.1, 0.0)
_E11_MUS = (2.0, 1.5, 1.0)
_E11_COSTS = (1.0, 3.0, 2.0)
_E11_FEEDBACK = (
    (0.0, 0.3, 0.2),
    (0.0, 0.0, 0.4),
    (0.1, 0.0, 0.0),
)


@scenario(
    "E11",
    title="Klimov's index rule for the M/G/1 with feedback",
    claim=(
        "Klimov's index rule is optimal for the M/G/1 with Markovian "
        "feedback [24] and reduces to cµ without feedback."
    ),
    verdict=(
        "Reproduced: Klimov's order is best among all simulated priority "
        "orders (within Monte-Carlo noise) and the no-feedback reduction "
        "is exact."
    ),
    defaults={"horizon": 6000.0},
    checks={
        "klimov_best_order": lambda m: m["klimov_vs_best"] <= 1.05,
        "reduces_to_cmu": lambda m: m["reduction_exact"] == 1.0,
    },
    tags=("queueing", "simulation", "feedback"),
)
def simulate_e11(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E11: Klimov's index rule for the M/G/1 with feedback.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.distributions import Exponential
    from repro.queueing.klimov import klimov_indices, klimov_order
    from repro.queueing.mg1 import cmu_order
    from repro.queueing.network import (
        ClassConfig,
        QueueingNetwork,
        StationConfig,
        simulate_network,
    )

    lam, mus, costs = list(_E11_LAM), list(_E11_MUS), list(_E11_COSTS)
    feedback = np.array(_E11_FEEDBACK)
    means = [1.0 / m for m in mus]
    horizon = float(params["horizon"])

    k_order = tuple(klimov_order(costs, means, feedback))
    naive = tuple(cmu_order(costs, means))
    perms = list(itertools.permutations(range(3)))
    # CRN: every priority order replays the same arrival/service stream.
    results = {}
    for perm, rng in zip(perms, crn_generators(ss, len(perms))):
        net = QueueingNetwork(
            [
                ClassConfig(0, Exponential(mus[j]), arrival_rate=lam[j], cost=costs[j])
                for j in range(3)
            ],
            [StationConfig(discipline="priority", priority=perm)],
            routing=feedback,
        )
        results[perm] = simulate_network(net, horizon, rng, warmup_fraction=0.2).cost_rate
    best = min(results.values())
    reduce_ok = np.allclose(
        klimov_indices(costs, means, np.zeros((3, 3))),
        np.asarray(costs) / np.asarray(means),
    )
    return {
        "klimov_cost": float(results[k_order]),
        "best_cost": float(best),
        "klimov_vs_best": float(results[k_order] / best),
        "naive_cmu_ratio": float(results[naive] / results[k_order]),
        "reduction_exact": float(reduce_ok),
    }


# ---------------------------------------------------------------------------
# E12 — heavy traffic on parallel servers
# ---------------------------------------------------------------------------


@scenario(
    "E12",
    title="cµ on parallel servers: asymptotic optimality in heavy traffic",
    claim=(
        "On parallel servers the cµ/Klimov heuristic is asymptotically "
        "optimal in heavy traffic (Glazebrook–Niño-Mora [22]): its gap to "
        "the pooled lower bound vanishes as rho -> 1."
    ),
    verdict=(
        "Reproduced: the cost ratio to the pooled preemptive-cµ lower "
        "bound decreases towards 1 as rho -> 1."
    ),
    defaults={
        "mu": (4.0, 1.0),
        "costs": (1.0, 2.0),
        "m": 2,
        "rhos": (0.6, 0.9, 0.95),
        "horizon": 12000.0,
    },
    checks={
        "bound_respected": lambda m: m["min_ratio"] > 0.9,
        # a single-rho grid (e.g. one point of a `repro-sweep` rho sweep,
        # where the decrease is asserted *across* sweep points) has no
        # decrease to show — the check only claims it for real grids
        "ratio_decreases": lambda m: m["n_rhos"] < 2
        or m["last_ratio"] < m["first_ratio"],
        # at the default horizon the rho=0.95 point is still transient-
        # biased; raise `horizon` for the sharper 1.1-style threshold.
        # Tightness is only claimed when the grid actually reaches heavy
        # traffic (top rho >= 0.95)
        "heavy_traffic_tight": lambda m: m["top_rho"] < 0.95
        or m["last_ratio"] < 1.2,
    },
    tags=("queueing", "simulation", "heavy-traffic"),
)
def simulate_e12(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E12: cµ on parallel servers: asymptotic optimality in heavy traffic.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.queueing import parallel_server_experiment

    rng = np.random.default_rng(ss)
    pts = parallel_server_experiment(
        list(params["mu"]),
        list(params["costs"]),
        int(params["m"]),
        list(params["rhos"]),
        rng,
        horizon=float(params["horizon"]),
    )
    ratios = [p.ratio for p in pts]
    return {
        "first_ratio": float(ratios[0]),
        "last_ratio": float(ratios[-1]),
        "min_ratio": float(min(ratios)),
        "last_bound": float(pts[-1].pooled_bound),
        "last_cost": float(pts[-1].cmu_cost),
        # deterministic grid descriptors, so the shape checks can tell a
        # real rho grid from a degenerate single-rho sweep point
        "n_rhos": float(len(pts)),
        "top_rho": float(pts[-1].rho),
    }


# ---------------------------------------------------------------------------
# E13 — Rybko–Stolyar instability
# ---------------------------------------------------------------------------


@scenario(
    "E13",
    title="Rybko–Stolyar: priority instability under nominal underload",
    claim=(
        "Stability is subtle in multiclass networks [9]: a priority policy "
        "can diverge with every station underloaded (Rybko–Stolyar); the "
        "naive fluid model misses it and the virtual-station augmented "
        "fluid catches it."
    ),
    verdict=(
        "Reproduced: exit-priority diverges at virtual load 1.2 while FIFO "
        "and the virtual-load-0.8 variant stay stable; only the augmented "
        "fluid model predicts the instability."
    ),
    defaults={"horizon": 2000.0, "fluid_dt": 0.01, "fluid_horizon": 80.0},
    checks={
        "priority_diverges": lambda m: m["instability_ratio"] > 10.0,
        "safe_variant_stable": lambda m: m["safe_backlog"] < 100.0,
        "naive_fluid_blind": lambda m: m["naive_fluid_stable"] == 1.0,
        "augmented_fluid_sees_it": lambda m: m["augmented_fluid_stable"] == 0.0,
    },
    tags=("queueing", "simulation", "stability"),
)
def simulate_e13(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E13: Rybko–Stolyar: priority instability under nominal underload.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.queueing import (
        FluidModel,
        is_fluid_stable,
        rybko_stolyar_network,
        simulate_network,
        virtual_station_load,
    )

    horizon = float(params["horizon"])
    dt, fh = float(params["fluid_dt"]), float(params["fluid_horizon"])
    bad = rybko_stolyar_network(1.0, 0.1, 0.6, priority_to_exit=True)
    fifo = rybko_stolyar_network(1.0, 0.1, 0.6, priority_to_exit=False)
    safe = rybko_stolyar_network(1.0, 0.1, 0.4, priority_to_exit=True)

    rngs = np.random.default_rng(ss).spawn(3)
    res_bad = simulate_network(bad, horizon, rngs[0])
    res_fifo = simulate_network(fifo, horizon, rngs[1])
    res_safe = simulate_network(safe, horizon, rngs[2])

    naive_stable = is_fluid_stable(FluidModel.from_network(bad), horizon=fh, dt=dt)
    aug_stable = is_fluid_stable(
        FluidModel.from_network(bad, virtual_stations=((1, 3),)), horizon=fh, dt=dt
    )
    return {
        "bad_backlog": float(res_bad.final_backlog),
        "fifo_backlog": float(res_fifo.final_backlog),
        "safe_backlog": float(res_safe.final_backlog),
        "instability_ratio": float(
            res_bad.final_backlog / max(res_fifo.final_backlog, 1.0)
        ),
        "virtual_load_bad": float(virtual_station_load(bad)),
        "naive_fluid_stable": float(naive_stable),
        "augmented_fluid_stable": float(aug_stable),
    }


# ---------------------------------------------------------------------------
# E14 — fluid-guided policies
# ---------------------------------------------------------------------------


def _e14_network(priority_a, priority_b):
    from repro.distributions import Exponential
    from repro.queueing.network import ClassConfig, QueueingNetwork, StationConfig

    classes = [
        ClassConfig(0, Exponential(3.0), arrival_rate=0.8, cost=1.0),
        ClassConfig(1, Exponential(2.0), arrival_rate=0.0, cost=2.0),
        ClassConfig(0, Exponential(2.5), arrival_rate=0.0, cost=4.0),
    ]
    routing = np.zeros((3, 3))
    routing[0, 1] = 1.0
    routing[1, 2] = 1.0
    return QueueingNetwork(
        classes,
        [
            StationConfig(discipline="priority", priority=tuple(priority_a)),
            StationConfig(discipline="priority", priority=tuple(priority_b)),
        ],
        routing,
    )


@scenario(
    "E14",
    title="Fluid-model heuristics rank MQN policies correctly",
    claim=(
        "Fluid-model heuristics guide good multiclass-queueing-network "
        "policies (Chen–Yao [11], Atkins–Chen [3]): fluid drain analysis "
        "predicts relative policy quality in the stochastic network."
    ),
    verdict=(
        "Reproduced: fluid drain analysis and stochastic simulation rank "
        "the candidate policies consistently."
    ),
    defaults={"horizon": 6000.0, "fluid_dt": 0.01, "fluid_horizon": 120.0},
    checks={
        "both_drain_finite": lambda m: m["drain_exit_first"] < np.inf
        and m["drain_entry_first"] < np.inf,
        "fluid_choice_wins_sim": lambda m: m["exit_vs_entry_cost"] <= 1.02,
    },
    tags=("queueing", "simulation", "fluid"),
)
def simulate_e14(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E14: Fluid-model heuristics rank MQN policies correctly.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.queueing import FluidModel, fluid_drain_time, simulate_network

    horizon = float(params["horizon"])
    dt, fh = float(params["fluid_dt"]), float(params["fluid_horizon"])
    nets = {
        "exit_first": _e14_network((2, 0), (1,)),
        "entry_first": _e14_network((0, 2), (1,)),
    }
    drains, costs = {}, {}
    # CRN across the two candidate policies.
    for (name, net), rng in zip(nets.items(), crn_generators(ss, len(nets))):
        fm = FluidModel.from_network(net)
        drains[name] = fluid_drain_time(fm, [1, 1, 1], horizon=fh, dt=dt)
        costs[name] = simulate_network(net, horizon, rng).cost_rate
    return {
        "drain_exit_first": float(drains["exit_first"]),
        "drain_entry_first": float(drains["entry_first"]),
        "cost_exit_first": float(costs["exit_first"]),
        "cost_entry_first": float(costs["entry_first"]),
        "exit_vs_entry_cost": float(costs["exit_first"] / costs["entry_first"]),
    }


# ---------------------------------------------------------------------------
# E15 — polling with switchover times
# ---------------------------------------------------------------------------

_E15_LAM = (0.3, 0.2)


@scenario(
    "E15",
    title="Polling with changeovers: exhaustive <= gated <= limited",
    claim=(
        "Changeover/setup times change optimal control (polling systems, "
        "Levy–Sidi [25]): local policies rank exhaustive <= gated <= "
        "limited in weighted waits; the pseudo-conservation law pins the "
        "simulator; longer setups hurt every policy."
    ),
    verdict=(
        "Reproduced: the policy ordering holds at both switchover levels, "
        "the pseudo-conservation law matches simulation, and longer setups "
        "hurt every policy."
    ),
    defaults={"horizon": 12000.0, "switchover_means": (0.1, 0.4)},
    checks={
        "exhaustive_best": lambda m: m["exhaustive_short"] <= m["gated_short"] * 1.05
        and m["exhaustive_long"] <= m["gated_long"] * 1.05,
        "gated_beats_limited": lambda m: m["gated_short"] <= m["limited_short"] * 1.05
        and m["gated_long"] <= m["limited_long"] * 1.05,
        "pseudo_conservation": lambda m: m["max_conservation_err"] < 0.15,
        "setups_hurt": lambda m: m["exhaustive_long"] > m["exhaustive_short"]
        and m["gated_long"] > m["gated_short"]
        and m["limited_long"] > m["limited_short"],
    },
    tags=("queueing", "simulation", "polling"),
)
def simulate_e15(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E15: Polling with changeovers: exhaustive <= gated <= limited.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.distributions import Deterministic, Exponential
    from repro.queueing import PollingSystem, pseudo_conservation_rhs

    svc = [Exponential(2.0), Exponential(1.5)]
    lam = list(_E15_LAM)
    horizon = float(params["horizon"])
    short, long_ = params["switchover_means"]

    metrics: dict[str, float] = {}
    cons_errs = []
    cases = [
        (pol, sw_mean, label)
        for sw_mean, label in ((float(short), "short"), (float(long_), "long"))
        for pol in ("exhaustive", "gated", "limited")
    ]
    # CRN: all six (policy, switchover) cases replay the same streams.
    for (pol, sw_mean, label), rng in zip(cases, crn_generators(ss, len(cases))):
        sw = [Deterministic(sw_mean), Deterministic(sw_mean)]
        res = PollingSystem(lam, svc, sw, pol).simulate(horizon, rng)
        metrics[f"{pol}_{label}"] = float(res.weighted_wait_sum)
        if pol in ("exhaustive", "gated"):
            rhs = pseudo_conservation_rhs(lam, svc, sw, pol)
            cons_errs.append(abs(res.weighted_wait_sum / rhs - 1.0))
    metrics["max_conservation_err"] = float(max(cons_errs))
    return metrics


# ---------------------------------------------------------------------------
# E16 — HLF under in-tree precedence
# ---------------------------------------------------------------------------


@scenario(
    "E16",
    title="HLF asymptotic optimality under in-tree precedence",
    claim=(
        "HLF (Highest Level First) is asymptotically optimal for expected "
        "makespan of i.i.d. exponential jobs under in-tree precedence on "
        "parallel machines (Papadimitriou–Tsitsiklis [31])."
    ),
    verdict=(
        "Reproduced: HLF's makespan ratio to the universal lower bound "
        "improves with batch size and beats the random eligible-set policy."
    ),
    defaults={"sizes": (20, 60, 180), "m": 3},
    checks={
        "ratio_improves_with_n": lambda m: m["hlf_ratio_large"]
        <= m["hlf_ratio_small"] + 0.05,
        "hlf_near_bound": lambda m: m["hlf_ratio_large"] < 1.4,
        "hlf_beats_random": lambda m: m["random_ratio_large"]
        >= m["hlf_ratio_large"] - 0.02,
    },
    tags=("batch", "simulation", "precedence"),
)
def simulate_e16(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E16: HLF asymptotic optimality under in-tree precedence.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch import random_intree, simulate_intree_makespan
    from repro.batch.precedence import hlf_policy, random_policy

    m = int(params["m"])
    sizes = [int(n) for n in params["sizes"]]
    rng = np.random.default_rng(ss)
    metrics: dict[str, float] = {}
    for n, child in zip(sizes, ss.spawn(len(sizes))):
        tree = random_intree(n, _int_seed(rng))
        lb = max(n / m, float(tree.levels().max() + 1))
        # CRN: HLF and the random policy see the same service-time stream;
        # the random policy's *decisions* draw from a separate stream so
        # they do not desynchronise the paired service times.
        hlf_rng, rnd_rng = crn_generators(child, 2)
        policy_rng = np.random.default_rng(child.spawn(1)[0])
        hlf = simulate_intree_makespan(tree, m, 1.0, hlf_policy(tree), hlf_rng)
        rnd = simulate_intree_makespan(tree, m, 1.0, random_policy(policy_rng), rnd_rng)
        metrics[f"hlf_ratio_n{n}"] = float(hlf / lb)
        metrics[f"random_ratio_n{n}"] = float(rnd / lb)
    # aliases for the asymptotic-trend checks, valid for any sizes override
    metrics["hlf_ratio_small"] = metrics[f"hlf_ratio_n{sizes[0]}"]
    metrics["hlf_ratio_large"] = metrics[f"hlf_ratio_n{sizes[-1]}"]
    metrics["random_ratio_large"] = metrics[f"random_ratio_n{sizes[-1]}"]
    return metrics


# ---------------------------------------------------------------------------
# E17 — stochastic flow shops
# ---------------------------------------------------------------------------

# A fixed 5-job, 2-machine rate matrix (the study instance from the
# benchmark, drawn once from rng(17)); per-replication randomness is the
# realised processing times.
_E17_RATES = (
    (1.46865, 2.08557),
    (1.31226, 2.05519),
    (0.75568, 2.67148),
    (2.50876, 0.64199),
    (2.22997, 2.64313),
)
# The strongest competitor among the other 119 permutations, found by an
# exhaustive CRN pilot (4000 shared realisations per permutation): Talwar's
# order (3,4,0,1,2) came first at 4.78494, this runner-up second at
# 4.78591. Beating it under CRN certifies "best of all permutations"
# without re-enumerating 120 sequences every replication.
_E17_RUNNER_UP = (3, 0, 4, 1, 2)


@scenario(
    "E17",
    title="Two-machine exponential flow shop: Talwar's rule",
    claim=(
        "Stochastic flow shops (Wie–Pinedo [49]): Talwar's index rule "
        "(decreasing mu1 - mu2) minimises expected makespan in the "
        "2-machine exponential flow shop; blocking only increases "
        "makespans; Johnson's rule is the deterministic limit."
    ),
    verdict=(
        "Reproduced: Talwar matches the empirically best permutation "
        "(CRN comparison against the strongest competitor), beats its "
        "reverse, blocking increases the makespan realisation-by-"
        "realisation, and Johnson's rule is exactly optimal in the "
        "deterministic limit."
    ),
    defaults={},
    checks={
        "talwar_best_permutation": lambda m: m["runner_up_ratio"] >= 1.0 / 1.02,
        "talwar_beats_reverse": lambda m: m["reverse_ratio"] >= 0.98,
        "blocking_hurts": lambda m: m["blocked_minus_talwar"] >= -1e-9,
        "johnson_exact_deterministic": lambda m: m["johnson_gap"] < 1e-9,
    },
    tags=("batch", "simulation", "flowshop"),
)
def simulate_e17(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E17: Two-machine exponential flow shop: Talwar's rule.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch.flowshop import (
        johnson_order_deterministic,
        simulate_flowshop,
        talwar_order,
    )

    rates = np.array(_E17_RATES)
    order = talwar_order(rates)
    rng = np.random.default_rng(ss)
    # One realisation of the processing times, shared by every sequence
    # (common random numbers): the blocking comparison is then monotone
    # realisation-by-realisation, as the theory states.
    P = rng.exponential(1.0 / rates)
    talwar_mk = simulate_flowshop(P, order)[0]
    runner_up_mk = simulate_flowshop(P, list(_E17_RUNNER_UP))[0]
    reverse_mk = simulate_flowshop(P, order[::-1])[0]
    blocked_mk = simulate_flowshop(P, order, blocking=True)[0]

    # deterministic limit: Johnson's rule vs all permutations of the means
    times = 1.0 / rates
    j_order = johnson_order_deterministic(times)
    mk_j = simulate_flowshop(times, j_order)[0]
    best_det = min(
        simulate_flowshop(times, list(p))[0]
        for p in itertools.permutations(range(len(times)))
    )
    return {
        "talwar_makespan": float(talwar_mk),
        "runner_up_ratio": float(runner_up_mk / talwar_mk),
        "reverse_ratio": float(reverse_mk / talwar_mk),
        "blocked_minus_talwar": float(blocked_mk - talwar_mk),
        "johnson_gap": float(mk_j / best_det - 1.0),
    }


# ---------------------------------------------------------------------------
# E18 — uniform machines
# ---------------------------------------------------------------------------


@scenario(
    "E18",
    title="Uniform machines: threshold structure beyond naive greedy",
    claim=(
        "Uniform (speed-heterogeneous) machines [1, 12, 33]: optimal "
        "policies have threshold/matching structure — slow machines should "
        "sometimes idle — beyond the SEPT-to-fastest greedy heuristic."
    ),
    verdict=(
        "Reproduced: greedy is exactly optimal for identical unweighted "
        "jobs but strictly loses on weighted heterogeneous instances; "
        "values are monotone in machine speed."
    ),
    defaults={},
    checks={
        "greedy_optimal_identical": lambda m: m["greedy_identical_gap"] < 1e-9,
        "greedy_loses_weighted": lambda m: m["greedy_weighted_ratio"] > 1.01,
        "monotone_in_speed": lambda m: m["speedup_ratio"] < 1.0,
    },
    tags=("batch", "exact", "uniform-machines"),
)
def simulate_e18(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E18: Uniform machines: threshold structure beyond naive greedy.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.batch.uniform_machines import (
        greedy_assignment,
        uniform_flowtime_dp,
        uniform_policy_flowtime_dp,
    )

    # The study instances are fixed; the scenario is fully deterministic.
    rates_id = np.array([1.0, 1.0, 1.0])
    speeds = np.array([1.0, 0.15])
    opt_id = uniform_flowtime_dp(rates_id, speeds)
    greedy_id = uniform_policy_flowtime_dp(
        rates_id, speeds, greedy_assignment(rates_id, speeds)
    )

    rates_w = np.array([1.4950, 0.3967, 0.2793, 4.1037])
    speeds_w = np.array([0.9171, 0.6263])
    weights = np.array([3.6745, 2.7638, 4.6819, 4.0977])
    opt_w = uniform_flowtime_dp(rates_w, speeds_w, weights=weights)
    greedy_w = uniform_policy_flowtime_dp(
        rates_w, speeds_w, greedy_assignment(rates_w, speeds_w), weights=weights
    )
    opt_faster = uniform_flowtime_dp(rates_id, np.array([1.0, 0.6]))
    return {
        "greedy_identical_gap": float(greedy_id / opt_id - 1.0),
        "greedy_weighted_ratio": float(greedy_w / opt_w),
        "speedup_ratio": float(opt_faster / opt_id),
    }


# ---------------------------------------------------------------------------
# E19 — heterogeneous restless fleets
# ---------------------------------------------------------------------------


@scenario(
    "E19",
    title="Heterogeneous restless fleets vs the Lagrangian bound",
    claim=(
        "Heterogeneous restless fleets (Bertsimas–Niño-Mora [7]): index "
        "heuristics tested computationally against the Lagrangian "
        "relaxation bound."
    ),
    verdict=(
        "Reproduced: the Lagrangian dual bound dominates simulation; the "
        "Whittle policy operates close to the bound and at or above the "
        "myopic policy."
    ),
    defaults={"n_projects": 6, "n_states": 3, "m": 2, "horizon": 4000, "warmup": 400},
    checks={
        "bound_respected": lambda m: m["whittle_frac"] <= 1.05,
        "whittle_matches_myopic": lambda m: m["whittle_frac"]
        >= m["myopic_frac"] - 0.05,
        "whittle_near_bound": lambda m: m["whittle_frac"] >= 0.8,
    },
    tags=("bandits", "simulation", "heterogeneous"),
)
def simulate_e19(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of E19: Heterogeneous restless fleets vs the Lagrangian bound.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.bandits import (
        heterogeneous_relaxation_bound,
        heterogeneous_whittle_rule,
        random_restless_project,
        simulate_heterogeneous_restless,
    )
    from repro.core.indices import IndexRule

    class MyopicHet(IndexRule):
        def __init__(self, projects):
            self._gaps = [p.R1 - p.R0 for p in projects]

        def index(self, item, state=None):
            return float(self._gaps[int(item)][0 if state is None else int(state)])

        @property
        def name(self):
            return "Myopic[het]"

    rng = np.random.default_rng(ss)
    projects = [
        random_restless_project(int(params["n_states"]), rng)
        for _ in range(int(params["n_projects"]))
    ]
    m = int(params["m"])
    horizon, warmup = int(params["horizon"]), int(params["warmup"])
    bound, lam_star = heterogeneous_relaxation_bound(projects, m)
    w_rule = heterogeneous_whittle_rule(projects, criterion="average")

    sim_w, sim_m = rng.spawn(2)
    whittle = simulate_heterogeneous_restless(
        projects, m, w_rule, horizon, sim_w, warmup=warmup
    )
    myopic = simulate_heterogeneous_restless(
        projects, m, MyopicHet(projects), horizon, sim_m, warmup=warmup
    )
    return {
        "bound": float(bound),
        "shadow_price": float(lam_star),
        "whittle_frac": float(whittle / bound),
        "myopic_frac": float(myopic / bound),
    }


# ---------------------------------------------------------------------------
# A1–A3 — ablations (algorithmic cross-checks, kept in the registry so the
# generated EXPERIMENTS.md retains its ablation sections)
# ---------------------------------------------------------------------------


@scenario(
    "A1",
    title="Ablation: VWB vs restart-in-state Gittins algorithms",
    claim=(
        "Ablation: the VWB largest-index-first recursion and the "
        "Katehakis–Veinott restart-in-state formulation are independent "
        "algorithms for the same Gittins indices and must agree to "
        "numerical precision."
    ),
    verdict="Agreement to 1e-6 at every tested size.",
    defaults={"n_states": 20, "beta": 0.9},
    checks={
        "algorithms_agree": lambda m: m["algo_diff"] < 1e-6,
        "top_index_is_top_reward": lambda m: m["top_index_err"] < 1e-8,
    },
    tags=("bandits", "exact", "ablation"),
)
def simulate_a1(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of A1: Ablation: VWB vs restart-in-state Gittins algorithms.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.bandits import (
        gittins_indices_restart,
        gittins_indices_vwb,
        random_project,
    )

    rng = np.random.default_rng(ss)
    beta = float(params["beta"])
    proj = random_project(int(params["n_states"]), rng)
    g_vwb = gittins_indices_vwb(proj, beta)
    g_restart = gittins_indices_restart(proj, beta, tol=1e-11)
    return {
        "algo_diff": float(np.max(np.abs(g_vwb - g_restart))),
        # the top Gittins index equals the top one-step reward
        "top_index_err": float(abs(np.max(g_vwb) - np.max(proj.R))),
    }


@scenario(
    "A2",
    title="Ablation: event-engine M/M/1 accuracy anchor",
    claim=(
        "Ablation: the discrete-event engine must reproduce the M/M/1 "
        "closed forms (L, Wq) within Monte-Carlo tolerance — the accuracy "
        "anchor under every queueing experiment."
    ),
    verdict="Simulator matches closed forms within Monte-Carlo tolerance.",
    defaults={"rho": 0.7, "horizon": 20000.0},
    checks={
        "queue_length_matches": lambda m: m["L_abs_rel_err"] < 0.1,
        "waiting_time_matches": lambda m: m["Wq_abs_rel_err"] < 0.1,
    },
    tags=("sim", "simulation", "ablation"),
)
def simulate_a2(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of A2: Ablation: event-engine M/M/1 accuracy anchor.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.distributions import Exponential
    from repro.queueing.mg1 import mm1_metrics
    from repro.queueing.network import (
        ClassConfig,
        QueueingNetwork,
        StationConfig,
        simulate_network,
    )

    rho = float(params["rho"])
    net = QueueingNetwork(
        [ClassConfig(0, Exponential(1.0), arrival_rate=rho)],
        [StationConfig(discipline="priority", priority=(0,))],
    )
    res = simulate_network(
        net, float(params["horizon"]), np.random.default_rng(ss)
    )
    theory = mm1_metrics(rho, 1.0)
    return {
        "L_sim": float(res.mean_queue_lengths[0]),
        "Wq_sim": float(res.mean_waits[0]),
        "L_abs_rel_err": float(abs(res.mean_queue_lengths[0] / theory["L"] - 1.0)),
        "Wq_abs_rel_err": float(abs(res.mean_waits[0] / theory["Wq"] - 1.0)),
    }


@scenario(
    "A3",
    title="Ablation: achievable-region LP route to the cµ rule",
    claim=(
        "Ablation: the achievable-region LP over the conservation-law "
        "polytope must land on the same priority rule and value as the "
        "interchange-argument/Cobham derivation of cµ."
    ),
    verdict=(
        "The LP reproduces the interchange-argument rule and value exactly "
        "at every class count tested."
    ),
    defaults={"n_classes": 5},
    checks={
        "lp_value_matches_cobham": lambda m: m["cost_rel_gap"] < 1e-7,
        "lp_order_matches_cmu": lambda m: m["orders_match"] == 1.0,
    },
    tags=("core", "exact", "ablation"),
)
def simulate_a3(ss: np.random.SeedSequence, params: Params) -> dict[str, float]:
    """One replication of A3: Ablation: achievable-region LP route to the cµ rule.

    Derives all randomness from ``ss`` and measures the metric
    dictionary the registry entry's shape checks are evaluated on.
    """
    from repro.core import achievable_region_lp
    from repro.distributions import Exponential
    from repro.queueing.mg1 import optimal_average_cost

    rng = np.random.default_rng(ss)
    n = int(params["n_classes"])
    lam = rng.uniform(0.02, 0.8 / n, size=n)
    svcs = [Exponential(rng.uniform(0.8, 3.0)) for _ in range(n)]
    ms = [s.mean for s in svcs]
    m2 = [s.second_moment for s in svcs]
    c = rng.uniform(0.3, 3.0, size=n)
    sol = achievable_region_lp(lam, ms, m2, c)
    exact, order = optimal_average_cost(lam, svcs, c)
    return {
        "lp_cost": float(sol.optimal_cost),
        "cost_rel_gap": float(abs(sol.optimal_cost / exact - 1.0)),
        "orders_match": float(list(sol.priority_order) == list(order)),
    }
