"""Compatibility shim over the built-in scenario packs.

The survey's scenario catalogue used to live here as one 1500-line
module; it is now split by workload family into the built-in packs under
:mod:`repro.experiments.packs` (flowshop / bandits / restless / queueing
/ polling).  Importing this module keeps working — it loads every pack
into the global registry and re-exports the simulate functions (and the
module-private constants/helpers some kernels resolve at call time)
under their historical names.

New code should import from :mod:`repro.experiments` (registry lookups)
or the specific pack module instead.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.experiments.packs import load_packs
from repro.experiments.packs.bandits import (
    simulate_a1,
    simulate_e7,
    simulate_e9,
)
from repro.experiments.packs.flowshop import (
    _E17_RATES,
    _E17_RUNNER_UP,
    _int_seed,
    simulate_e1,
    simulate_e2,
    simulate_e3,
    simulate_e4,
    simulate_e5,
    simulate_e6,
    simulate_e16,
    simulate_e17,
    simulate_e18,
)
from repro.experiments.packs.polling import _E15_LAM, simulate_e15
from repro.experiments.packs.queueing import (
    _E10_ARRIVAL,
    _E10_COSTS,
    _E11_COSTS,
    _E11_FEEDBACK,
    _E11_LAM,
    _E11_MUS,
    _e10_services,
    _e14_network,
    simulate_a2,
    simulate_a3,
    simulate_e10,
    simulate_e11,
    simulate_e12,
    simulate_e13,
    simulate_e14,
)
from repro.experiments.packs.restless import (
    _e8_project,
    simulate_e8,
    simulate_e19,
)

Params = Mapping[str, Any]

load_packs()

__all__ = [
    "simulate_e1",
    "simulate_e2",
    "simulate_e3",
    "simulate_e4",
    "simulate_e5",
    "simulate_e6",
    "simulate_e7",
    "simulate_e8",
    "simulate_e9",
    "simulate_e10",
    "simulate_e11",
    "simulate_e12",
    "simulate_e13",
    "simulate_e14",
    "simulate_e15",
    "simulate_e16",
    "simulate_e17",
    "simulate_e18",
    "simulate_e19",
    "simulate_a1",
    "simulate_a2",
    "simulate_a3",
]
