"""Structured output for experiment runs: JSON documents and Markdown
reports.

This replaces the old log-scraping pipeline (``pytest … | tee bench.log``
followed by regex extraction): the runner hands over
:class:`~repro.experiments.runner.ScenarioResult` objects, which serialise
to a stable JSON schema, and the Markdown generator renders the same
claim-vs-measured report directly from that JSON — no terminal capture
involved.

The JSON document looks like::

    {
      "schema": "repro.experiments/v1",
      "generated_by": "repro x.y.z",
      "config": {"replications": ..., "seed": ..., "workers": ...},
      "results": [ {scenario result…}, … ]
    }

``load_results`` accepts both the document form and a bare list of scenario
results, so downstream tooling can consume either.
"""

from __future__ import annotations

import json
import math
from typing import Any, Mapping, Sequence

import repro
from repro.experiments.runner import ScenarioResult

__all__ = [
    "results_to_document",
    "results_to_json",
    "load_results",
    "generate_markdown",
    "canonical_sweep_document",
    "sweep_to_json",
    "generate_sweep_markdown",
]

SCHEMA = "repro.experiments/v1"

_HEADER = """# EXPERIMENTS — paper claims vs measured results

The reproduced paper (Niño-Mora, *Stochastic Scheduling*, Encyclopedia of
Optimization 2001) is a survey with **no numbered tables or figures**; its
evaluation-equivalent content is the set of landmark results it surveys.
Each experiment below reproduces one claim.  Metrics are aggregated over
independent replications by `repro-experiments` (point estimate ± Student-t
confidence half-width); the *shape* of every claim (who wins, by what
order, where the crossovers are) is encoded as named checks evaluated
against the aggregated metrics.
"""


def _json_safe(value: Any) -> Any:
    """Replace non-finite floats with ``None`` so the document stays valid
    RFC 8259 JSON (``json.dumps`` would otherwise emit the non-standard
    ``Infinity``/``NaN`` tokens, e.g. for the infinite half-width of a
    single-replication run)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, Mapping):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def results_to_document(
    results: Sequence[ScenarioResult | Mapping[str, Any]],
    *,
    config: Mapping[str, Any] | None = None,
    include_samples: bool = False,
) -> dict[str, Any]:
    """Wrap scenario results in the versioned JSON document structure.

    Non-finite floats are mapped to ``null`` for strict-parser safety.
    """
    rows = [
        r.to_dict(include_samples=include_samples)
        if isinstance(r, ScenarioResult)
        else dict(r)
        for r in results
    ]
    return _json_safe(
        {
            "schema": SCHEMA,
            "generated_by": f"repro {repro.__version__}",
            "config": dict(config or {}),
            "results": rows,
        }
    )


def results_to_json(
    results: Sequence[ScenarioResult | Mapping[str, Any]],
    *,
    config: Mapping[str, Any] | None = None,
    include_samples: bool = False,
    indent: int | None = 2,
) -> str:
    """Serialise results to a JSON string (strictly RFC 8259 valid)."""
    return json.dumps(
        results_to_document(
            results, config=config, include_samples=include_samples
        ),
        indent=indent,
        allow_nan=False,
    )


def load_results(text_or_obj: str | Mapping[str, Any] | Sequence) -> list[dict[str, Any]]:
    """Parse a results document (or bare result list) back to dicts.

    Accepts a JSON string, an already-parsed document, or a bare list of
    result dicts; validates the schema tag when present.
    """
    obj = json.loads(text_or_obj) if isinstance(text_or_obj, str) else text_or_obj
    if isinstance(obj, Mapping):
        schema = obj.get("schema")
        if schema is not None and schema != SCHEMA:
            raise ValueError(f"unsupported results schema {schema!r}")
        rows = obj.get("results", [])
    else:
        rows = obj
    return [dict(r) for r in rows]


def _fmt(x: Any) -> str:
    if x is None:
        return "—"  # sanitised non-finite value (e.g. single-rep half-width)
    if isinstance(x, bool):
        return "yes" if x else "no"
    if isinstance(x, (int, float)):
        return f"{x:.6g}"
    return str(x)


def _precision_line(precision: Mapping[str, Any], n: Any) -> str:
    """One-line summary of an adaptive-precision run: the target, the
    achieved ``n``, and whether the target was met."""
    target = precision.get("target") or {}
    criteria = []
    if target.get("relative") is not None:
        criteria.append(f"relative half-width ≤ {_fmt(target['relative'])}")
    if target.get("absolute") is not None:
        criteria.append(f"half-width ≤ {_fmt(target['absolute'])}")
    scope = target.get("metrics")
    scope_note = (
        f" on {', '.join(f'`{m}`' for m in scope)}" if scope else " on every metric"
    )
    bounds = f"{precision.get('min_reps')}–{precision.get('max_reps')}"
    if precision.get("met"):
        verdict = f"**met** at n = {n}"
    else:
        unmet = precision.get("unmet_metrics") or []
        verdict = (
            f"**NOT met** at the n = {n} replication cap"
            f" (still too wide: {', '.join(f'`{m}`' for m in unmet)})"
        )
    return (
        f"**Adaptive precision.** Target {' or '.join(criteria)}{scope_note}, "
        f"bounds {bounds}: {verdict}.\n"
    )


def _result_section(res: Mapping[str, Any]) -> list[str]:
    out = [f"\n## {res['scenario_id']} — {res.get('title', '')}\n"]
    out.append(f"**Paper claim.** {res.get('claim', '')}\n")
    n = res.get("n_replications")
    seed = res.get("seed")
    backend = res.get("backend")
    # name the backend that actually ran (never "auto"), so a report from
    # an `--backend auto` run is reproducible from the document alone
    backend_note = f", {backend} backend" if backend else ""
    cached = res.get("cached_replications") or 0
    cache_note = f", {cached} from the sample store" if cached else ""
    out.append(
        f"**Measured** ({n} replications, seed {seed}{backend_note}"
        f"{cache_note}):\n"
    )
    precision = res.get("precision")
    if precision:
        out.append(_precision_line(precision, n))
    out.append("| metric | mean | ±hw (95%) | min | max |")
    out.append("|---|---|---|---|---|")
    for name, m in sorted(res.get("metrics", {}).items()):
        out.append(
            f"| {name} | {_fmt(m['mean'])} | {_fmt(m['half_width'])} "
            f"| {_fmt(m['min'])} | {_fmt(m['max'])} |"
        )
    checks = res.get("checks", {})
    check_errors = res.get("check_errors", {})
    if checks:
        out.append("\n**Shape checks.**")
        for name, ok in sorted(checks.items()):
            suffix = f" — raised {check_errors[name]}" if name in check_errors else ""
            out.append(f"- {'✅' if ok else '❌'} `{name}`{suffix}")
    all_pass = res.get("all_checks_pass", all(checks.values()) if checks else True)
    if all_pass:
        out.append(f"\n**Verdict.** {res.get('verdict', '')}\n")
    else:
        failed = sorted(name for name, ok in checks.items() if not ok)
        out.append(
            f"\n**Verdict.** ⚠️ NOT reproduced in this run: "
            f"{len(failed)} of {len(checks)} shape checks failed "
            f"({', '.join(f'`{f}`' for f in failed)}). "
            f"Expected on a conforming run: {res.get('verdict', '')}\n"
        )
    return out


def generate_markdown(
    results: Sequence[ScenarioResult | Mapping[str, Any]],
    *,
    header: str = _HEADER,
) -> str:
    """Render the claim-vs-measured Markdown report."""
    rows = [
        r.to_dict() if isinstance(r, ScenarioResult) else r for r in results
    ]
    out = [header]
    passed = sum(1 for r in rows if r.get("all_checks_pass"))
    out.append(
        f"\n**Summary:** {passed}/{len(rows)} scenarios pass all shape checks.\n"
    )
    for res in rows:
        out.extend(_result_section(res))
    return "\n".join(out)


# ---------------------------------------------------------------------------
# sweep reports (documents produced by SweepResult.to_document)
# ---------------------------------------------------------------------------


def sweep_to_json(document: Mapping[str, Any], *, indent: int | None = 2) -> str:
    """Serialise a sweep document (``repro.sweeps/v1``) to strict JSON.

    Applies the same non-finite-float sanitisation as the scenario
    document serialiser: ``NaN``/``inf`` become ``null`` so the output
    stays valid RFC 8259 for strict parsers."""
    return json.dumps(_json_safe(dict(document)), indent=indent, allow_nan=False)


#: document keys whose values depend on the run, not on the experiment:
#: wall-clock timings, cache-hit bookkeeping, and the store location.
_VOLATILE_KEYS = {
    "elapsed_seconds": 0.0,
    "cached_replications": 0,
    "cache_dir": None,
}


def canonical_sweep_document(document: Mapping[str, Any]) -> dict[str, Any]:
    """The run-independent projection of a sweep document.

    Replaces every *volatile* field — ``elapsed_seconds`` (wall-clock),
    ``cached_replications`` (how much of the run happened to be served by
    a sample store), and ``config.cache_dir`` (where that store lives) —
    with a fixed neutral value, recursively, wherever it appears (the
    document top level, each point's embedded scenario result, and each
    long-form table row).  Everything that remains is a pure function of
    ``(spec, run configuration, root seed)``: the samples themselves are
    bit-identical across backends, worker counts, cache states, and
    execution orders, so two canonical documents for the same request are
    **byte-identical** however they were produced.  This is the form the
    serving daemon (:mod:`repro.serve`) stores and serves, and the form
    ``repro-sweep run --canonical`` emits.
    """

    def canon(value: Any) -> Any:
        if isinstance(value, Mapping):
            return {
                k: _VOLATILE_KEYS[k] if k in _VOLATILE_KEYS else canon(v)
                for k, v in value.items()
            }
        if isinstance(value, (list, tuple)):
            return [canon(v) for v in value]
        return value

    return canon(dict(document))


def _axes_cell(axis_values: Mapping[str, Any], names: Sequence[str]) -> list[str]:
    """One table cell per axis name ('—' where a list-mode point doesn't
    cover the axis)."""
    return [
        _fmt(axis_values[name]) if name in axis_values else "—"
        for name in names
    ]


def generate_sweep_markdown(document: Mapping[str, Any]) -> str:
    """Render the Markdown sweep report from a ``repro.sweeps/v1`` document
    (the output of :meth:`~repro.experiments.sweeps.SweepResult.to_document`).

    The report shows the sweep header (scenario, mode, axes, run
    configuration), a per-point table (axis values, achieved ``n``,
    cache/backend bookkeeping, every metric as ``mean ±hw``), and one
    marginal summary table per axis (metric means averaged over the other
    axes)."""
    spec = document.get("spec", {})
    points = document.get("points", [])
    axis_summaries = document.get("axis_summaries", {})
    axis_names = list(axis_summaries) or sorted(
        {name for p in points for name in p.get("axis_values", {})}
    )
    config = document.get("config", {})
    sid = spec.get("scenario_id", "?")
    title = next(
        (p.get("result", {}).get("title") for p in points if p.get("result")), ""
    )

    out = [f"# Sweep — {sid}{' · ' + title if title else ''}\n"]
    mode = spec.get("mode", "grid")
    if mode == "list":
        out.append(f"**Points.** explicit list of {len(points)} points.\n")
    else:
        axes_desc = "; ".join(
            f"`{name}` ∈ {{{', '.join(_fmt(v) for v in values)}}}"
            for name, values in spec.get("axes", {}).items()
        )
        out.append(f"**Axes** ({mode}, {len(points)} points): {axes_desc}.\n")
    if spec.get("base"):
        base_desc = ", ".join(
            f"`{k}` = {_fmt(v)}" for k, v in spec["base"].items()
        )
        out.append(f"**Base overrides.** {base_desc}.\n")
    if document.get("where"):
        where_desc = ", ".join(
            f"`{k}` = {_fmt(v)}" for k, v in document["where"].items()
        )
        out.append(f"**Point filter.** {where_desc}.\n")
    if config:
        cfg_desc = ", ".join(
            f"{k} = {_fmt(v)}" for k, v in config.items() if v is not None
        )
        out.append(f"**Config.** {cfg_desc}.\n")
    passed = sum(
        1 for p in points if p.get("result", {}).get("all_checks_pass")
    )
    total = document.get("total_replications")
    cached = document.get("cached_replications")
    cache_note = (
        f"; {cached}/{total} replications from the sample store"
        if cached
        else ""
    )
    out.append(
        f"**Summary:** {passed}/{len(points)} points pass all shape checks"
        f"{cache_note}.\n"
    )

    metric_names = sorted(
        {name for p in points for name in p.get("result", {}).get("metrics", {})}
    )
    out.append("## Results by point\n")
    header = (
        ["#"] + [f"`{a}`" for a in axis_names]
        + ["n", "cached", "backend", "checks"]
        + [f"`{m}`" for m in metric_names]
    )
    out.append("| " + " | ".join(header) + " |")
    out.append("|" + "---|" * len(header))
    for p in points:
        res = p.get("result", {})
        metrics = res.get("metrics", {})
        cells = [str(p.get("index", "?"))]
        cells += _axes_cell(p.get("axis_values", {}), axis_names)
        cells += [
            _fmt(res.get("n_replications")),
            _fmt(res.get("cached_replications", 0)),
            str(res.get("backend", "?")),
            "✅" if res.get("all_checks_pass") else "❌",
        ]
        for m in metric_names:
            entry = metrics.get(m)
            cells.append(
                f"{_fmt(entry['mean'])} ±{_fmt(entry['half_width'])}"
                if entry
                else "—"
            )
        out.append("| " + " | ".join(cells) + " |")

    for axis in axis_names:
        rows = axis_summaries.get(axis)
        if not rows:
            continue
        out.append(f"\n## Axis `{axis}` — marginal metric means\n")
        out.append(
            "Metric means averaged over the other axes, per value of "
            f"`{axis}`.\n"
        )
        out.append(
            "| `" + axis + "` | points | "
            + " | ".join(f"`{m}`" for m in metric_names)
            + " |"
        )
        out.append("|" + "---|" * (len(metric_names) + 2))
        for row in rows:
            cells = [_fmt(row.get("value")), _fmt(row.get("n_points"))]
            means = row.get("metrics", {})
            cells += [
                _fmt(means[m]) if m in means else "—" for m in metric_names
            ]
            out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out) + "\n"
