"""Experiment registry and parallel replication runner — the public API
for reproducing the survey's claims.

This package turns the E1–E19 benchmark workloads into first-class,
discoverable objects:

* :mod:`repro.experiments.registry` — the declarative
  :class:`~repro.experiments.registry.Scenario` registry: each scenario
  bundles a per-replication ``simulate`` function with the paper claim it
  validates, default parameters, and named *shape checks*.
* :mod:`repro.experiments.packs` — scenario *packs*: named, versioned
  manifests bundling scenarios (with per-parameter JSON schemas) and
  their vectorized kernels.  The built-in catalogue (E1–E19, A1–A3)
  ships as five family packs; third-party packs register through the
  ``repro.scenario_packs`` entry-point group without touching core.
* :mod:`repro.experiments.scenarios` — compatibility shim re-exporting
  the built-in packs' simulate functions under their historical names.
* :mod:`repro.experiments.runner` — batched replications with multiprocess
  fan-out over spawned seed streams and vectorised aggregation; results
  are bit-identical for every worker count.
* :mod:`repro.experiments.backends` — the second simulation backend:
  vectorized kernels that run all replications of a scenario at once on
  batched numpy arrays, bit-for-bit equivalent to the event-driven path
  (``backend="event" | "vectorized" | "auto"`` on the runner and CLI).
* :mod:`repro.experiments.store` — the content-addressed, resumable
  sample store: per-replication sample matrices keyed by
  ``(scenario, canonical params, root seed)``, so re-runs (more
  replications, tighter precision targets) reuse the cached prefix and
  simulate only the remainder (``cache_dir=`` on the runner, ``--cache-dir``
  on the CLI).
* :mod:`repro.experiments.sweeps` — declarative parameter sweeps: a
  :class:`~repro.experiments.sweeps.SweepSpec` (grid/zip/list of
  parameter axes over one registered scenario, validated against its
  param schema) expands into concrete points that run through
  :func:`run_scenarios` — per-point sample-store cache entries, adaptive
  precision, and backend choice all apply — and aggregate into a
  long-form table plus per-axis marginal summaries.
* :mod:`repro.experiments.report` — structured JSON documents and the
  Markdown claim-vs-measured report (and the sweep-report renderers).
* :mod:`repro.experiments.cli` — the ``repro-experiments`` console script.
* :mod:`repro.experiments.sweep_cli` — the ``repro-sweep`` console script.

Adaptive precision: pass ``target_precision=`` (``--target-precision``) to
replace the fixed replication count with the sequential controller in
:mod:`repro.sim.sequential`, which grows the count until every metric's
confidence interval is tight enough and records the achieved ``n``.

Typical use::

    from repro.experiments import get_scenario, run_scenario

    result = run_scenario("E1", replications=200, workers=4, seed=0)
    assert result.all_checks_pass
    print(result.metrics["fifo_ratio"].mean)
"""

from repro.experiments.backends import (
    BACKENDS,
    MissingKernelError,
    has_kernel,
    kernel_ids,
    resolve_backend,
)
from repro.experiments.packs import (
    PackError,
    ScenarioPack,
    discovered_packs,
    load_packs,
    register_pack,
)
from repro.experiments.registry import (
    CheckOutcome,
    ParamValidationError,
    Scenario,
    get_scenario,
    list_scenarios,
    pack_info,
    register,
    scenario,
    scenario_ids,
)
from repro.experiments.runner import (
    MetricSummary,
    ScenarioResult,
    run_scenario,
    run_scenarios,
)
from repro.experiments.report import (
    canonical_sweep_document,
    generate_markdown,
    generate_sweep_markdown,
    load_results,
    results_to_document,
    results_to_json,
    sweep_to_json,
)
from repro.experiments.store import MemoryStore, SampleStore, StoreBackend
from repro.experiments.sweeps import (
    SweepPoint,
    SweepResult,
    SweepSpec,
    run_sweep,
    sweep_run_config,
)
from repro.sim.sequential import PrecisionTarget

__all__ = [
    "Scenario",
    "scenario",
    "register",
    "get_scenario",
    "list_scenarios",
    "scenario_ids",
    "ScenarioPack",
    "PackError",
    "register_pack",
    "load_packs",
    "discovered_packs",
    "pack_info",
    "ParamValidationError",
    "CheckOutcome",
    "BACKENDS",
    "MissingKernelError",
    "has_kernel",
    "kernel_ids",
    "resolve_backend",
    "MetricSummary",
    "ScenarioResult",
    "run_scenario",
    "run_scenarios",
    "canonical_sweep_document",
    "generate_markdown",
    "generate_sweep_markdown",
    "load_results",
    "results_to_document",
    "results_to_json",
    "sweep_to_json",
    "MemoryStore",
    "SampleStore",
    "StoreBackend",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "run_sweep",
    "sweep_run_config",
    "PrecisionTarget",
]
