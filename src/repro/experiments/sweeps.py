"""Declarative parameter sweeps over registered scenarios.

The paper's experiments are fundamentally *sweeps* — traffic-intensity
grids for the heavy-traffic and instability studies, fleet-size and
switchover scalings — yet :func:`~repro.experiments.runner.run_scenario`
runs exactly one parameter point.  This module multiplies a registered
scenario into a *family* of parameter points from a declarative spec:

* :class:`SweepSpec` — which scenario, which parameter axes, and how the
  axes combine (``grid``: cartesian product; ``zip``: lockstep tuples;
  ``list``: explicit points), plus fixed ``base`` overrides applied to
  every point.  Axis names are validated against the scenario's declared
  parameter schema (its ``defaults``) before any simulation runs.
* :func:`run_sweep` — expands the spec into concrete
  :class:`SweepPoint` s and runs them through
  :func:`~repro.experiments.runner.run_scenarios`, so every runner
  feature applies per point: the vectorized backend, the adaptive
  sequential controller (``target_precision`` — each point stops at its
  own achieved ``n``), and the content-addressed sample store
  (``cache_dir`` — each point's params address a distinct store entry,
  so a re-run of the same grid loads every point from cache and a grown
  grid only simulates the new points).
* :class:`SweepResult` — the per-point results plus the aggregate views:
  a long-form table keyed by ``(scenario_id, axis values)`` (one row per
  point per metric) and per-axis marginal summaries (metric means
  averaged over the other axes).

Determinism contract
--------------------
Every point derives its replication seeds from the *same* root seed, so
(a) points are common-random-number comparable — replication ``i`` sees
the same streams at every point — and (b) the sweep inherits the runner's
guarantees verbatim: per-point samples are bit-identical whether the grid
is run whole, point by point through :func:`run_scenario`, resumed from
the sample store, or executed on either backend with any worker count.

Typical use::

    from repro.experiments import SweepSpec, run_sweep

    spec = SweepSpec("E1", axes={"n_jobs": [20, 40, 80], "n_brute": [5, 6]})
    sweep = run_sweep(spec, replications=20, seed=0)
    for row in sweep.table():
        print(row["axes"], row["metric"], row["mean"])
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Mapping, Sequence

from repro.experiments.registry import Scenario, get_scenario
from repro.experiments.runner import ScenarioResult, run_scenarios
from repro.experiments.store import SampleStore, StoreBackend
from repro.sim.sequential import PrecisionTarget
from repro.utils.serialization import jsonable

import repro

__all__ = [
    "SWEEP_MODES",
    "SWEEP_SCHEMA",
    "SweepSpec",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "sweep_run_config",
]

SWEEP_MODES = ("grid", "zip", "list")
SWEEP_SCHEMA = "repro.sweeps/v1"


@dataclass(frozen=True)
class SweepPoint:
    """One concrete parameter point of an expanded sweep.

    Attributes
    ----------
    index:
        Position in the expanded (unfiltered) point list; stable across
        ``where`` filtering so a filtered run's points can be matched
        against the full grid.
    scenario_id:
        The swept scenario's id.
    axis_values:
        This point's value on every sweep axis, in axis order.
    overrides:
        The parameter overrides handed to the runner: the spec's ``base``
        mapping with ``axis_values`` merged on top.
    """

    index: int
    scenario_id: str
    axis_values: Mapping[str, Any]
    overrides: Mapping[str, Any]

    def matches(self, where: Mapping[str, Any]) -> bool:
        """Whether this point's axis values agree with every ``where``
        entry (values are compared after canonical JSON normalisation, so
        ``(0.6,) == [0.6]`` and numpy scalars equal Python scalars)."""
        return all(
            name in self.axis_values
            and jsonable(self.axis_values[name]) == jsonable(value)
            for name, value in where.items()
        )

    def label(self) -> str:
        """Compact human-readable ``name=value`` form for progress lines."""
        return " ".join(f"{k}={v!r}" for k, v in self.axis_values.items())

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON serialisation."""
        return {
            "index": self.index,
            "scenario_id": self.scenario_id,
            "axis_values": jsonable(dict(self.axis_values)),
            "overrides": jsonable(dict(self.overrides)),
        }


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: one scenario, several parameter axes.

    Parameters
    ----------
    scenario_id:
        Id of a registered scenario; axis and base names are validated
        against its declared parameter schema (``Scenario.defaults``).
    axes:
        Ordered mapping of parameter name to the sequence of values that
        axis takes (``grid``/``zip`` modes).  Ignored in ``list`` mode.
    mode:
        ``"grid"`` — cartesian product of the axes in declaration order,
        last axis fastest (like nested for-loops); ``"zip"`` — axes of
        equal length advanced in lockstep (point ``i`` takes each axis's
        ``i``-th value); ``"list"`` — the explicit ``points`` mappings
        are the sweep, and the axis names are the union of their keys.
    points:
        Explicit parameter points for ``list`` mode; each mapping may
        cover a different subset of the listed axes (absent names fall
        back to ``base``/defaults for that point).
    base:
        Fixed parameter overrides applied to every point (axis values win
        on conflict — but a name may not be both an axis and a base key).
    """

    scenario_id: str
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    mode: str = "grid"
    points: Sequence[Mapping[str, Any]] | None = None
    base: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in SWEEP_MODES:
            raise ValueError(
                f"unknown sweep mode {self.mode!r}; choose from {SWEEP_MODES}"
            )
        axes = {str(k): tuple(v) for k, v in dict(self.axes).items()}
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "base", dict(self.base))
        if self.points is not None:
            object.__setattr__(
                self, "points", tuple(dict(p) for p in self.points)
            )
        if self.mode == "list":
            if not self.points:
                raise ValueError("mode='list' needs a non-empty points sequence")
            if axes:
                raise ValueError(
                    "mode='list' takes explicit points; axes must be empty"
                )
        else:
            if self.points is not None:
                raise ValueError(
                    f"explicit points require mode='list' (got {self.mode!r})"
                )
            if not axes:
                raise ValueError(f"mode={self.mode!r} needs at least one axis")
            for name, values in axes.items():
                if not values:
                    raise ValueError(f"axis {name!r} has no values")
            if self.mode == "zip":
                lengths = {name: len(v) for name, v in axes.items()}
                if len(set(lengths.values())) > 1:
                    raise ValueError(
                        f"mode='zip' needs equal-length axes, got {lengths}"
                    )
        clash = sorted(set(self.axis_names) & set(self.base))
        if clash:
            raise ValueError(
                f"parameter(s) {clash} appear both as a sweep axis and in "
                f"base; a name must be one or the other"
            )

    @property
    def axis_names(self) -> tuple[str, ...]:
        """The swept parameter names, in declaration (or first-seen) order."""
        if self.mode == "list":
            names: dict[str, None] = {}
            for point in self.points or ():
                for name in point:
                    names.setdefault(str(name))
            return tuple(names)
        return tuple(self.axes)

    def resolve(self) -> Scenario:
        """Look up the scenario and validate every swept/base name against
        its parameter schema; raises ``KeyError`` naming the offender."""
        sc = get_scenario(self.scenario_id)
        known = set(sc.defaults)
        for kind, names in (("axis", self.axis_names), ("base", tuple(self.base))):
            for name in names:
                if name not in known:
                    raise KeyError(
                        f"sweep {kind} {name!r} is not a parameter of "
                        f"{sc.scenario_id}; known: {sorted(known)}"
                    )
        return sc

    def expand(self) -> list[SweepPoint]:
        """Expand into concrete :class:`SweepPoint` s (validates first).

        ``grid`` enumerates the cartesian product in row-major order
        (first axis slowest), ``zip`` pairs the axes elementwise, and
        ``list`` passes the explicit points through in order.
        """
        sc = self.resolve()
        combos: list[dict[str, Any]]
        if self.mode == "list":
            combos = [dict(p) for p in self.points or ()]
        elif self.mode == "zip":
            n = len(next(iter(self.axes.values())))
            combos = [
                {name: values[i] for name, values in self.axes.items()}
                for i in range(n)
            ]
        else:
            combos = [
                dict(zip(self.axes, values))
                for values in product(*self.axes.values())
            ]
        return [
            SweepPoint(
                index=i,
                scenario_id=sc.scenario_id,
                axis_values=combo,
                overrides={**self.base, **combo},
            )
            for i, combo in enumerate(combos)
        ]

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON serialisation."""
        return {
            "scenario_id": self.scenario_id,
            "mode": self.mode,
            "axes": jsonable({k: list(v) for k, v in self.axes.items()}),
            "points": (
                jsonable([dict(p) for p in self.points])
                if self.points is not None
                else None
            ),
            "base": jsonable(dict(self.base)),
        }

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "SweepSpec":
        """Rebuild a spec from its :meth:`to_dict` form.

        The inverse used by the serving layer to accept
        ``repro.sweeps/v1``-shaped submissions over the wire; unknown
        keys raise so a malformed document fails loudly instead of
        silently dropping configuration.
        """
        if not isinstance(obj, Mapping):
            raise ValueError(f"sweep spec must be a mapping, got {type(obj).__name__}")
        known = {"scenario_id", "mode", "axes", "points", "base"}
        unknown = sorted(set(obj) - known)
        if unknown:
            raise ValueError(f"sweep spec has unknown key(s) {unknown}")
        if "scenario_id" not in obj:
            raise ValueError("sweep spec needs a scenario_id")
        scenario_id = obj["scenario_id"]
        if not isinstance(scenario_id, str):
            raise ValueError("sweep spec scenario_id must be a string")
        axes = obj.get("axes") or {}
        base = obj.get("base") or {}
        points = obj.get("points")
        if not isinstance(axes, Mapping):
            raise ValueError("sweep spec axes must be a mapping of name -> values")
        if not isinstance(base, Mapping):
            raise ValueError("sweep spec base must be a mapping")
        if points is not None and (
            isinstance(points, (str, Mapping))
            or not all(isinstance(p, Mapping) for p in points)
        ):
            raise ValueError("sweep spec points must be a sequence of mappings")
        return cls(
            scenario_id,
            axes=axes,
            mode=obj.get("mode", "grid"),
            points=points,
            base=base,
        )


@dataclass(frozen=True)
class SweepResult:
    """Everything measured for one sweep: per-point results + aggregates.

    ``points[i]`` and ``results[i]`` correspond; ``where`` records any
    point filter that was applied (empty mapping = the full grid ran).
    """

    spec: SweepSpec
    points: tuple[SweepPoint, ...]
    results: tuple[ScenarioResult, ...]
    elapsed_seconds: float
    where: Mapping[str, Any] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        """Whether every point passes all of its scenario's shape checks."""
        return all(r.all_checks_pass for r in self.results)

    @property
    def total_replications(self) -> int:
        """Replications across all points (cached + freshly simulated)."""
        return sum(r.n_replications for r in self.results)

    @property
    def cached_replications(self) -> int:
        """Replications restored from the sample store across all points."""
        return sum(r.cached_replications for r in self.results)

    def table(self) -> list[dict[str, Any]]:
        """The long-form result table: one row per (point, metric).

        Each row is keyed by ``(scenario_id, axes)`` — the point's axis
        values under ``"axes"`` — and carries that metric's aggregated
        statistics, plus the point-level bookkeeping (``n_replications``,
        ``cached_replications``, ``backend``, ``all_checks_pass``).
        """
        rows = []
        for point, res in zip(self.points, self.results):
            for name in sorted(res.metrics):
                m = res.metrics[name]
                rows.append(
                    {
                        "scenario_id": res.scenario_id,
                        "point": point.index,
                        "axes": jsonable(dict(point.axis_values)),
                        "metric": name,
                        "mean": m.mean,
                        "half_width": m.half_width,
                        "std": m.std,
                        "min": m.minimum,
                        "max": m.maximum,
                        "n": m.n,
                        "n_replications": res.n_replications,
                        "cached_replications": res.cached_replications,
                        "backend": res.backend,
                        "all_checks_pass": res.all_checks_pass,
                    }
                )
        return rows

    def axis_summary(self, axis: str) -> list[dict[str, Any]]:
        """Marginal summary along one axis: for each distinct value (in
        first-seen order), every metric's mean averaged over the points
        taking that value (i.e. over the other axes)."""
        if axis not in self.spec.axis_names:
            raise KeyError(
                f"unknown axis {axis!r}; sweep axes: {list(self.spec.axis_names)}"
            )
        groups: dict[str, dict[str, Any]] = {}
        for point, res in zip(self.points, self.results):
            if axis not in point.axis_values:
                continue  # list-mode point not covering this axis
            value = point.axis_values[axis]
            key = repr(jsonable(value))
            row = groups.setdefault(
                key, {"value": jsonable(value), "n_points": 0, "metrics": {}}
            )
            row["n_points"] += 1
            for name, m in res.metrics.items():
                row["metrics"].setdefault(name, []).append(m.mean)
        out = []
        for row in groups.values():
            out.append(
                {
                    "value": row["value"],
                    "n_points": row["n_points"],
                    "metrics": {
                        name: sum(vals) / len(vals)
                        for name, vals in sorted(row["metrics"].items())
                    },
                }
            )
        return out

    def to_document(
        self,
        *,
        config: Mapping[str, Any] | None = None,
        include_samples: bool = False,
    ) -> dict[str, Any]:
        """The versioned sweep JSON document (schema ``repro.sweeps/v1``).

        Bundles the spec, the per-point scenario results, the long-form
        table, and the per-axis marginal summaries; ``config`` records
        the run configuration for reproducibility.  Non-finite floats are
        mapped to ``null`` (strict RFC 8259) by the JSON serialiser in
        :mod:`repro.experiments.report`.
        """
        return {
            "schema": SWEEP_SCHEMA,
            "generated_by": f"repro {repro.__version__}",
            "spec": self.spec.to_dict(),
            "where": jsonable(dict(self.where)),
            "config": dict(config or {}),
            "n_points": len(self.points),
            "all_checks_pass": self.all_checks_pass,
            "total_replications": self.total_replications,
            "cached_replications": self.cached_replications,
            "elapsed_seconds": self.elapsed_seconds,
            "points": [
                {
                    **point.to_dict(),
                    "result": res.to_dict(include_samples=include_samples),
                }
                for point, res in zip(self.points, self.results)
            ],
            "table": self.table(),
            "axis_summaries": {
                axis: self.axis_summary(axis) for axis in self.spec.axis_names
            },
        }


def run_sweep(
    spec: SweepSpec,
    *,
    replications: int = 10,
    seed: int | None = 0,
    workers: int | None = 1,
    level: float = 0.95,
    backend: str = "auto",
    target_precision: PrecisionTarget | float | None = None,
    min_reps: int | None = None,
    max_reps: int | None = None,
    cache_dir: str | os.PathLike | StoreBackend | None = None,
    where: Mapping[str, Any] | None = None,
    progress: Callable[[SweepPoint, ScenarioResult], None] | None = None,
) -> SweepResult:
    """Expand ``spec`` and run every point through the scenario runner.

    All keyword arguments after ``spec`` are per-point runner
    configuration with :func:`~repro.experiments.runner.run_scenario`
    semantics: ``backend`` selects the simulation backend for every
    point, ``target_precision``/``min_reps``/``max_reps`` switch each
    point to the adaptive sequential controller (each point stops at its
    own achieved ``n``), and ``cache_dir`` plugs in the sample store —
    because the store keys on ``(scenario_id, params, seed)``, every
    point addresses its own entry, so re-running a sweep against the
    same store loads every point from cache.

    Parameters
    ----------
    spec:
        The declarative sweep (validated and expanded before any
        simulation runs).
    where:
        Optional point filter: keep only points whose axis values match
        every entry (compared after canonical JSON normalisation).
        Filtering changes *which* points run, never their samples.
    progress:
        Optional callback invoked with ``(point, result)`` as each point
        completes (the CLI uses it for its per-point status line).

    Returns
    -------
    SweepResult
        Per-point results in point order, plus the aggregate table and
        per-axis summary views.
    """
    points = spec.expand()
    if where:
        unknown = sorted(set(where) - set(spec.axis_names))
        if unknown:
            raise KeyError(
                f"where filter names non-axis parameter(s) {unknown}; "
                f"sweep axes: {list(spec.axis_names)}"
            )
        points = [p for p in points if p.matches(where)]
        if not points:
            raise ValueError(
                f"where filter {dict(where)!r} matches no point of the sweep"
            )
    per_point_callback = None
    if progress is not None:
        by_position = iter(points)

        def per_point_callback(res: ScenarioResult) -> None:
            progress(next(by_position), res)

    # elapsed_seconds is reporting-only; it never feeds metrics or seeds
    start = time.perf_counter()  # repro-lint: disable=REP003
    results = run_scenarios(
        [p.scenario_id for p in points],
        replications=replications,
        seed=seed,
        workers=workers,
        params=[p.overrides for p in points],
        level=level,
        backend=backend,
        target_precision=target_precision,
        min_reps=min_reps,
        max_reps=max_reps,
        cache_dir=cache_dir,
        progress=per_point_callback,
    )
    elapsed = time.perf_counter() - start  # repro-lint: disable=REP003
    return SweepResult(
        spec=spec,
        points=tuple(points),
        results=tuple(results),
        elapsed_seconds=elapsed,
        where=dict(where or {}),
    )


def sweep_run_config(
    *,
    replications: int,
    seed: int | None,
    workers: int | None,
    backend: str,
    resolved_backends: Sequence[str],
    level: float,
    target_precision: float | None,
    min_reps: int | None,
    max_reps: int | None,
    cache_dir: Any,
) -> dict[str, Any]:
    """The ``config`` mapping embedded in a sweep document.

    One shared constructor — used by the ``repro-sweep`` CLI and the
    serving daemon (:mod:`repro.serve`) — so documents produced by both
    paths carry an identical ``config`` block (same keys, same order) and
    the serving layer's byte-identity contract can hold.
    """
    return {
        "replications": replications,
        "seed": seed,
        "workers": workers,
        "backend_requested": backend,
        "resolved_backends": sorted(set(resolved_backends)),
        "level": level,
        "target_precision": target_precision,
        "min_reps": min_reps,
        "max_reps": max_reps,
        "cache_dir": (
            os.fspath(cache_dir)
            if isinstance(cache_dir, (str, os.PathLike))
            else None
            if cache_dir is None
            else type(cache_dir).__name__
        ),
    }
