"""The ``repro-experiments`` command-line interface.

Runs any subset of the registered scenarios with parallel replications and
emits structured JSON and/or a Markdown claim-vs-measured report::

    repro-experiments --list
    repro-experiments packs
    repro-experiments run E1 E2 --replications 200 --workers 4
    repro-experiments run all --replications 20 --json results.json \\
        --markdown EXPERIMENTS.md
    repro-experiments run E10 E11 --param horizon=2000 --seed 7
    repro-experiments run E1 E12 --target-precision 0.05 --cache-dir .cache

The last form is adaptive: each scenario's replication count grows until
every metric's relative CI half-width meets the target (within
``--min-reps``/``--max-reps`` bounds), and the sample store under
``--cache-dir`` lets a re-run with a tighter target reuse the cached
replications and simulate only the remainder.

Without an installed entry point the module form works identically::

    python -m repro.experiments.cli --list

Results are deterministic in the root ``--seed``: for a fixed seed the
point estimates are bit-identical for every ``--workers`` value.

To run one scenario over a *grid* of parameter points (rather than one
point per scenario), use the companion ``repro-sweep`` CLI
(:mod:`repro.experiments.sweep_cli`).
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Any, Sequence

from repro.experiments.backends import MissingKernelError
from repro.experiments.registry import (
    ParamValidationError,
    get_scenario,
    list_scenarios,
    pack_info,
    scenario_ids,
)
from repro.experiments.report import generate_markdown, results_to_json
from repro.experiments.runner import run_scenarios
from repro.sim.sequential import DEFAULT_MAX_REPS, DEFAULT_MIN_REPS

__all__ = ["main", "build_parser", "CliError"]


class CliError(Exception):
    """A user-facing CLI error (printed without a traceback, exit 2)."""


def _literal(raw: str) -> Any:
    """A Python literal when possible, else the bare string."""
    try:
        return ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        return raw


def _parse_param(text: str) -> tuple[str, Any]:
    """Parse a ``key=value`` override; the value is a Python literal when
    possible, else kept as a string."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"parameter override {text!r} is not of the form key=value"
        )
    key, raw = text.split("=", 1)
    return key.strip(), _literal(raw)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Run registered stochastic-scheduling experiments.",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_only",
        help="list registered scenarios and exit",
    )
    sub = parser.add_subparsers(dest="command")

    lst = sub.add_parser("list", help="list registered scenarios")
    lst.add_argument("--tag", action="append", default=[], help="filter by tag")

    sub.add_parser(
        "packs",
        help="list discovered scenario packs (built-in and entry-point)",
    )

    run = sub.add_parser("run", help="run a subset of scenarios")
    run.add_argument(
        "scenarios",
        nargs="+",
        help="scenario ids (e.g. E1 E2), or 'all'",
    )
    run.add_argument(
        "--replications", type=int, default=10, help="replications per scenario"
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (0 = all cores); results are identical "
        "for every worker count",
    )
    run.add_argument("--seed", type=int, default=0, help="root seed")
    run.add_argument(
        "--backend",
        choices=["event", "vectorized", "auto"],
        default="auto",
        help="simulation backend: the per-replication event engine, the "
        "batched vectorized kernels (an error for scenarios without a "
        "kernel), or auto (kernel when one exists, event otherwise); "
        "backends are bit-for-bit equivalent, so this only changes speed",
    )
    run.add_argument(
        "--level", type=float, default=0.95, help="confidence level"
    )
    run.add_argument(
        "--target-precision",
        type=float,
        default=None,
        metavar="REL",
        help="adaptive mode: grow the replication count until every "
        "metric's relative CI half-width is <= REL (a deterministic "
        "metric counts as met); --replications is ignored, the achieved "
        "n is reported per scenario",
    )
    run.add_argument(
        "--min-reps",
        type=int,
        default=None,
        help="adaptive mode: first evaluation point (default "
        f"{DEFAULT_MIN_REPS}); requires --target-precision",
    )
    run.add_argument(
        "--max-reps",
        type=int,
        default=None,
        help="adaptive mode: hard replication cap (default "
        f"{DEFAULT_MAX_REPS}); requires --target-precision",
    )
    run.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed sample store: replications cached for the "
        "same (scenario, params, seed) are reused and only the remainder "
        "is simulated; the grown prefix is written back",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir (neither read nor write the sample store)",
    )
    run.add_argument(
        "--param",
        action="append",
        default=[],
        type=_parse_param,
        metavar="KEY=VALUE",
        help="parameter override, applied to scenarios declaring KEY "
        "(repeatable)",
    )
    run.add_argument(
        "--json",
        metavar="PATH",
        help="write the JSON results document to PATH ('-' for stdout)",
    )
    run.add_argument(
        "--markdown",
        metavar="PATH",
        help="write the Markdown report to PATH ('-' for stdout)",
    )
    run.add_argument(
        "--include-samples",
        action="store_true",
        help="embed raw per-replication samples in the JSON output",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress the progress table"
    )
    return parser


def _cmd_list(tags: Sequence[str]) -> int:
    scenarios = list_scenarios(tuple(tags) or None)
    width = max((len(sc.scenario_id) for sc in scenarios), default=2)
    packs = {sc.scenario_id: pack_info(sc.scenario_id) for sc in scenarios}
    pack_width = max(
        (len(f"{n}@{v}") for n, v in packs.values()), default=4
    )
    for sc in scenarios:
        tag_str = f"  [{', '.join(sc.tags)}]" if sc.tags else ""
        name, version = packs[sc.scenario_id]
        print(
            f"{sc.scenario_id:<{width}}  {f'{name}@{version}':<{pack_width}}  "
            f"{sc.title}{tag_str}"
        )
    return 0


def _cmd_packs() -> int:
    from repro.experiments.packs import discovered_packs

    for pack, source in discovered_packs():
        print(f"{pack.name} {pack.version}  [{source}]")
        if pack.docs:
            print(f"  docs: {pack.docs}")
        ids = sorted(sc.scenario_id for sc in pack.scenarios.values())
        kernels = sorted(pack.kernels)
        print(f"  scenarios ({len(ids)}): {', '.join(ids)}")
        if kernels:
            print(f"  vectorized kernels ({len(kernels)}): {', '.join(kernels)}")
    return 0


def _resolve_ids(requested: Sequence[str]) -> list[str]:
    if any(r.lower() == "all" for r in requested):
        return scenario_ids()
    # validate early so typos fail before any work is done
    try:
        return [get_scenario(r).scenario_id for r in requested]
    except KeyError as exc:
        raise CliError(exc.args[0]) from exc


def _validate_run_args(args: argparse.Namespace) -> None:
    """Validate the runner flags shared by ``repro-experiments run`` and
    ``repro-sweep run`` (replications, level, and the adaptive-precision
    flag combinations); raises :class:`CliError` on misuse."""
    if args.replications < 1:
        raise CliError("--replications must be at least 1")
    if not 0 < args.level < 1:
        raise CliError(
            f"--level must be strictly between 0 and 1 (got {args.level}); "
            f"e.g. 0.95 for a 95% confidence interval"
        )
    if args.target_precision is not None and not args.target_precision > 0:
        raise CliError(
            f"--target-precision must be > 0 (got {args.target_precision})"
        )
    if args.target_precision is None:
        for flag, value in (("--min-reps", args.min_reps), ("--max-reps", args.max_reps)):
            if value is not None:
                raise CliError(f"{flag} requires --target-precision")
    else:
        if args.min_reps is not None and args.min_reps < 2:
            raise CliError("--min-reps must be at least 2")
        lo = args.min_reps if args.min_reps is not None else DEFAULT_MIN_REPS
        hi = args.max_reps if args.max_reps is not None else DEFAULT_MAX_REPS
        if hi < lo:
            raise CliError(f"--max-reps ({hi}) must be >= --min-reps ({lo})")


def _cmd_run(args: argparse.Namespace) -> int:
    ids = _resolve_ids(args.scenarios)
    params = dict(args.param)
    _validate_run_args(args)
    cache_dir = None if args.no_cache else args.cache_dir
    # every override must be meaningful for at least one selected scenario
    known = {k for sid in ids for k in get_scenario(sid).defaults}
    unknown = sorted(set(params) - known)
    if unknown:
        raise CliError(
            f"--param key(s) {', '.join(unknown)} not declared by any "
            f"selected scenario; known parameters: {sorted(known)}"
        )
    # an explicit vectorized request must fail fast, before any scenario
    # burns simulation time whose results would then be discarded
    if args.backend == "vectorized":
        from repro.experiments.backends import resolve_backend

        try:
            for sid in ids:
                resolve_backend(sid, "vectorized")
        except MissingKernelError as exc:
            raise CliError(str(exc)) from exc
    results = []
    for sid in ids:
        try:
            res = run_scenarios(
                [sid],
                replications=args.replications,
                seed=args.seed,
                workers=args.workers,
                params=params,
                level=args.level,
                backend=args.backend,
                target_precision=args.target_precision,
                min_reps=args.min_reps,
                max_reps=args.max_reps,
                cache_dir=cache_dir,
            )[0]
        except (MissingKernelError, ParamValidationError) as exc:
            raise CliError(str(exc)) from exc
        results.append(res)
        if not args.quiet:
            status = "PASS" if res.all_checks_pass else "FAIL"
            failing = [k for k, ok in res.checks.items() if not ok]
            extra = f"  failing: {', '.join(failing)}" if failing else ""
            notes = []
            if res.cached_replications:
                notes.append(f"{res.cached_replications} cached")
            if res.precision is not None:
                notes.append(
                    "target met"
                    if res.precision["met"]
                    else "target NOT met at max-reps"
                )
            note = f" ({', '.join(notes)})" if notes else ""
            print(
                f"{res.scenario_id:>4}  {status}  "
                f"{res.n_replications} reps in {res.elapsed_seconds:.2f}s "
                f"[{res.backend}]{note}{extra}",
                file=sys.stderr,
            )

    config = {
        "replications": args.replications,
        "seed": args.seed,
        "workers": args.workers,
        # what the user asked for; each result entry additionally records
        # the backend that actually ran (`"backend"` in the result dict),
        # and the summary below makes an `auto` run reproducible from the
        # report alone
        "backend_requested": args.backend,
        "resolved_backends": {res.scenario_id: res.backend for res in results},
        "level": args.level,
        "params": {k: repr(v) for k, v in params.items()},
        # adaptive mode: each result entry records the achieved n
        # (`"n_replications"`) and the outcome (`"precision"`)
        "target_precision": args.target_precision,
        "min_reps": args.min_reps,
        "max_reps": args.max_reps,
        "cache_dir": cache_dir,
    }
    if args.json:
        text = results_to_json(
            results, config=config, include_samples=args.include_samples
        )
        _emit(args.json, text)
    if args.markdown:
        _emit(args.markdown, generate_markdown(results))
    return 0 if all(r.all_checks_pass for r in results) else 1


def _emit(path: str, text: str) -> None:
    """Write a report to ``path`` ('-' = stdout); unwritable paths are a
    :class:`CliError`, not a traceback."""
    if path == "-":
        print(text)
        return
    try:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    except OSError as exc:
        raise CliError(f"cannot write report to {path!r}: {exc}") from exc


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-experiments`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.list_only or args.command == "list":
            return _cmd_list(getattr(args, "tag", []))
        if args.command == "packs":
            return _cmd_packs()
        if args.command == "run":
            return _cmd_run(args)
        parser.print_help()
        return 2
    except CliError as exc:
        print(f"repro-experiments: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (e.g. `repro-experiments --list | head`);
        # suppress the traceback and exit like a well-behaved filter.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
