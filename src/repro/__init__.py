"""repro — a stochastic-scheduling library.

A production-quality reproduction of the systems surveyed in
J. Niño-Mora, *Stochastic Scheduling* (Encyclopedia of Optimization, 2001):

* :mod:`repro.batch` — scheduling a batch of stochastic jobs (WSEPT, SEPT,
  LEPT, Sevcik's preemptive index, parallel/uniform machines, flow shops,
  in-tree precedence, turnpike analysis);
* :mod:`repro.bandits` — multi-armed bandits (Gittins index, restless
  bandits and the Whittle index, LP relaxations, switching costs);
* :mod:`repro.queueing` — queueing scheduling control (cµ rule, Klimov's
  model, conservation laws / achievable region, multiclass networks,
  stability, fluid models, heavy traffic, polling);
* :mod:`repro.core` — the unifying priority-index policy framework;
* substrates: :mod:`repro.distributions`, :mod:`repro.markov`,
  :mod:`repro.mdp`, :mod:`repro.sim`, :mod:`repro.utils`.
"""

# The version participates in the sample store's content address
# (repro/experiments/store.py): bump it whenever any scenario's simulate
# output changes, so stale cached rows are never served.  1.1.0: the
# sweep subsystem, and E12 gained the n_rhos/top_rho grid descriptors.
# 1.2.0: the bench-trajectory subsystem and the profiled flat engines
# (all outputs bit-identical to 1.1.0).
__version__ = "1.3.0"

from repro import batch, core, distributions, markov, mdp, sim, utils  # noqa: F401

__all__ = [
    "batch",
    "bandits",
    "queueing",
    "core",
    "distributions",
    "markov",
    "mdp",
    "sim",
    "utils",
    "experiments",
    "__version__",
]


def __getattr__(name):
    # bandits, queueing and experiments are imported lazily so a partial
    # checkout of the light subpackages stays importable (experiments pulls
    # in every subsystem through its scenario catalogue).
    if name in ("bandits", "queueing", "experiments"):
        import importlib

        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
